"""Job-spec tests: seeding discipline, chunking, aggregate algebra."""

import numpy as np
import pytest

from repro.engine import (
    DEFAULT_CHUNK,
    ErrorCounts,
    MagnitudeStats,
    MonteCarloErrorJob,
    MonteCarloMagnitudeJob,
    SweepJob,
    SweepPoint,
    chunk_seed_sequence,
)


class TestChunkSeeds:
    def test_matches_seed_sequence_spawn(self):
        """chunk_seed_sequence(s, i) is exactly SeedSequence(s).spawn(...)[i]."""
        for seed in (0, 2012, 2**63):
            spawned = np.random.SeedSequence(seed).spawn(8)
            for i, child in enumerate(spawned):
                direct = chunk_seed_sequence(seed, i)
                assert direct.generate_state(4).tolist() == child.generate_state(
                    4
                ).tolist()

    def test_streams_differ_across_chunks(self):
        states = {
            tuple(chunk_seed_sequence(2012, i).generate_state(2)) for i in range(64)
        }
        assert len(states) == 64

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            chunk_seed_sequence(2012, -1)


class TestErrorJob:
    def test_chunk_specs_cover_samples(self):
        job = MonteCarloErrorJob(width=64, window=8, samples=150_000, chunk_size=2**16)
        specs = job.chunk_specs()
        assert [s.index for s in specs] == list(range(len(specs)))
        assert sum(s.size for s in specs) == 150_000
        assert all(s.size == 2**16 for s in specs[:-1])

    def test_exact_multiple_has_no_tail_chunk(self):
        job = MonteCarloErrorJob(width=64, window=8, samples=3 * DEFAULT_CHUNK)
        assert len(job.chunk_specs()) == 3

    def test_chunk_result_independent_of_other_chunks(self):
        """A chunk's counts depend only on (seed, index)."""
        job = MonteCarloErrorJob(width=64, window=8, samples=200_000, chunk_size=2**14)
        spec = job.chunk_specs()[3]
        small = MonteCarloErrorJob(width=64, window=8, samples=2**16, chunk_size=2**14)
        again = small.chunk_specs()[3]
        a = job.run_chunk(spec)
        b = small.run_chunk(again)
        assert (a.samples, a.scsa1_errors, a.vlcsa2_errors, a.vlcsa2_stalls) == (
            b.samples,
            b.scsa1_errors,
            b.vlcsa2_errors,
            b.vlcsa2_stalls,
        )

    def test_with_seed_changes_counts(self):
        base = MonteCarloErrorJob(width=64, window=6, samples=2**15)
        spec = base.chunk_specs()[0]
        assert (
            base.run_chunk(spec).scsa1_errors
            != base.with_seed(9).run_chunk(spec).scsa1_errors
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 1, "window": 1, "samples": 10},
            {"width": 64, "window": 0, "samples": 10},
            {"width": 64, "window": 65, "samples": 10},
            {"width": 64, "window": 8, "samples": 0},
            {"width": 64, "window": 8, "samples": 10, "chunk_size": 0},
            {"width": 64, "window": 8, "samples": 10, "distribution": "exponential"},
            {"width": 64, "window": 8, "samples": 10, "counters": ("bogus",)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MonteCarloErrorJob(**kwargs)


class TestAggregates:
    def test_error_counts_merge_is_commutative(self):
        a = ErrorCounts(samples=10, scsa1_errors=2, vlcsa2_stalls=1)
        b = ErrorCounts(samples=20, scsa1_errors=5, vlcsa2_errors=1)
        left = ErrorCounts().merge(a).merge(b)
        right = ErrorCounts().merge(b).merge(a)
        for field in ("samples", "scsa1_errors", "vlcsa2_errors", "vlcsa2_stalls"):
            assert getattr(left, field) == getattr(right, field)

    def test_chain_count_merge(self):
        a = ErrorCounts(samples=1, chain_counts=np.array([0, 1, 2], dtype=np.int64))
        b = ErrorCounts(samples=1, chain_counts=np.array([3, 0, 1], dtype=np.int64))
        merged = a.merge(b)
        assert merged.chain_counts.tolist() == [3, 1, 3]

    def test_rate_on_empty_aggregate(self):
        assert ErrorCounts().rate("scsa1_errors") == 0.0

    def test_magnitude_merge_tracks_max_and_exact_sum(self):
        a = MagnitudeStats(samples=5, errors=1, sum_abs_error=1 << 70, max_abs_error=9)
        b = MagnitudeStats(samples=5, errors=2, sum_abs_error=3, max_abs_error=11)
        merged = a.merge(b)
        assert merged.sum_abs_error == (1 << 70) + 3  # Python int, no overflow
        assert merged.max_abs_error == 11
        assert merged.mean_abs_error == merged.sum_abs_error / 10


class TestMagnitudeJob:
    def test_error_count_matches_error_job(self):
        """Magnitude job sees the same operand streams as the error job."""
        mag = MonteCarloMagnitudeJob(width=32, window=8, samples=2**15)
        err = MonteCarloErrorJob(
            width=32, window=8, samples=2**15, counters=("scsa1",)
        )
        spec = mag.chunk_specs()[0]
        assert mag.run_chunk(spec).errors == err.run_chunk(spec).scsa1_errors

    def test_width_cap(self):
        with pytest.raises(ValueError):
            MonteCarloMagnitudeJob(width=64, window=8, samples=10)


class TestSweepJob:
    def test_rows_keyed_by_point_order(self):
        job = SweepJob(
            points=(
                SweepPoint("vlcsa1", 16, 4),
                SweepPoint("designware", 16, None),
            )
        )
        specs = job.chunk_specs()
        assert [s.payload.architecture for s in specs] == ["vlcsa1", "designware"]
        agg = job.new_aggregate()
        for spec in reversed(specs):  # out-of-order completion
            agg = agg.merge(job.run_chunk(spec))
        rows = agg.ordered()
        assert [r["architecture"] for r in rows] == ["vlcsa1", "designware"]
        assert all(r["delay"] > 0 and r["area"] > 0 for r in rows)

    def test_model_rate_only_on_windowed_designs(self):
        job = SweepJob(points=(SweepPoint("designware", 16, None),))
        (row,) = job.new_aggregate().merge(
            job.run_chunk(job.chunk_specs()[0])
        ).ordered()
        assert "model_error_rate" not in row

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            SweepJob(points=())
