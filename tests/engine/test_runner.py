"""Runner tests: the headline guarantee is parallel == serial, bit for bit."""

from dataclasses import dataclass

import pytest

from repro.engine import (
    EngineError,
    EngineMetrics,
    MonteCarloErrorJob,
    MonteCarloMagnitudeJob,
    run_job,
    run_jobs,
)
from repro.engine.jobs import ChunkSpec


def _counts_tuple(agg):
    return (
        agg.samples,
        agg.scsa1_errors,
        agg.vlcsa1_nominal,
        agg.vlcsa2_errors,
        agg.vlcsa2_stalls,
        None if agg.chain_counts is None else agg.chain_counts.tolist(),
    )


class TestBitIdentical:
    def test_scsa_job_parallel_matches_serial(self):
        """SCSA error job: 2 workers and serial agree exactly (fixed seed)."""
        job = MonteCarloErrorJob(
            width=64,
            window=8,
            samples=200_000,
            seed=42,
            chunk_size=2**14,
            counters=("scsa1",),
            chain_lengths=True,
        )
        serial = run_job(job, workers=0).aggregate
        parallel = run_job(job, workers=2).aggregate
        assert _counts_tuple(serial) == _counts_tuple(parallel)

    def test_vlcsa2_job_parallel_matches_serial(self):
        """VLCSA 2 job (both detectors, Gaussian inputs): same guarantee."""
        job = MonteCarloErrorJob(
            width=128,
            window=15,
            samples=120_000,
            distribution="gaussian",
            seed=7,
            chunk_size=2**14,
            counters=("scsa1", "vlcsa1_nominal", "vlcsa2", "vlcsa2_stall"),
        )
        serial = run_job(job, workers=0).aggregate
        parallel = run_job(job, workers=2).aggregate
        assert _counts_tuple(serial) == _counts_tuple(parallel)

    def test_magnitude_job_parallel_matches_serial(self):
        job = MonteCarloMagnitudeJob(
            width=32, window=8, samples=150_000, seed=3, chunk_size=2**14
        )
        serial = run_job(job, workers=0).aggregate
        parallel = run_job(job, workers=3).aggregate
        assert (serial.samples, serial.errors, serial.sum_abs_error) == (
            parallel.samples,
            parallel.errors,
            parallel.sum_abs_error,
        )
        assert serial.max_abs_error == parallel.max_abs_error

    def test_group_results_keep_job_order(self):
        jobs = [
            MonteCarloErrorJob(
                width=64, window=k, samples=60_000, seed=1, counters=("scsa1",)
            )
            for k in (6, 8, 10)
        ]
        serial = run_jobs(jobs, workers=0)
        parallel = run_jobs(jobs, workers=2)
        for job, s, p in zip(jobs, serial, parallel):
            assert s.job is job
            assert s.aggregate.scsa1_errors == p.aggregate.scsa1_errors
        # smaller window -> strictly more errors at these scales
        errs = [r.aggregate.scsa1_errors for r in serial]
        assert errs[0] > errs[1] > errs[2]


@dataclass(frozen=True)
class _ExplodingJob:
    """Minimal job whose chunk 3 raises (tests failure propagation)."""

    chunks: int = 6

    def chunk_specs(self):
        return tuple(ChunkSpec(index=i, size=1) for i in range(self.chunks))

    def new_aggregate(self):
        from repro.engine.jobs import ErrorCounts

        return ErrorCounts()

    def run_chunk(self, spec):
        from repro.engine.jobs import ErrorCounts

        if spec.index == 3:
            raise RuntimeError("boom in chunk 3")
        return ErrorCounts(samples=spec.size)


class TestFailureHandling:
    def test_worker_exception_surfaces(self):
        with pytest.raises(EngineError, match="boom in chunk 3"):
            run_job(_ExplodingJob(), workers=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom in chunk 3"):
            run_job(_ExplodingJob(), workers=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            run_job(_ExplodingJob(), workers=-1)

    def test_empty_group_is_noop(self):
        assert run_jobs([], workers=2) == []


class TestMetrics:
    def test_shared_metrics_accumulate(self):
        metrics = EngineMetrics()
        job = MonteCarloErrorJob(
            width=32, window=6, samples=40_000, chunk_size=2**14, counters=("scsa1",)
        )
        run_job(job, workers=0, metrics=metrics)
        assert metrics.counters["samples"] == 40_000
        assert metrics.counters["chunks"] == 3
        assert metrics.timers["simulate"] > 0
        assert metrics.throughput() > 0

    def test_json_report_round_trips(self):
        import json

        metrics = EngineMetrics()
        job = MonteCarloErrorJob(
            width=32, window=6, samples=10_000, counters=("scsa1",)
        )
        run_job(job, workers=0, metrics=metrics)
        blob = json.loads(metrics.to_json())
        assert blob["counters"]["samples"] == 10_000
        assert "simulate" in blob["timers_s"]
