"""SWAR kernel equivalence: must match the window-profile reference bit
for bit at every width/window/remainder combination."""

import numpy as np
import pytest

from repro.engine.kernels import scsa1_error_count, scsa1_error_flags_swar
from repro.inputs.generators import gaussian_operands, uniform_operands
from repro.model.behavioral import pack_ints, scsa1_error_flags, window_profile


def _reference(a, b, width, k, remainder):
    return scsa1_error_flags(window_profile(a, b, width, k, remainder))


class TestEquivalence:
    @pytest.mark.parametrize("width", [8, 16, 31, 32, 63, 64, 65, 128, 256, 512])
    @pytest.mark.parametrize("remainder", ["lsb", "msb"])
    def test_matches_profile_path_uniform(self, width, remainder):
        rng = np.random.default_rng(width * 2 + (remainder == "msb"))
        a = uniform_operands(width, 4000, rng)
        b = uniform_operands(width, 4000, rng)
        for k in (2, 3, 5, 8, min(13, width), min(17, width)):
            got = scsa1_error_flags_swar(a, b, width, k, remainder)
            want = _reference(a, b, width, k, remainder)
            assert np.array_equal(got, want), (width, k, remainder)

    @pytest.mark.parametrize("width", [64, 128])
    def test_matches_profile_path_gaussian(self, width):
        rng = np.random.default_rng(9)
        a = gaussian_operands(width, 4000, rng=rng)
        b = gaussian_operands(width, 4000, rng=rng)
        for k in (6, 14):
            for remainder in ("lsb", "msb"):
                got = scsa1_error_flags_swar(a, b, width, k, remainder)
                want = _reference(a, b, width, k, remainder)
                assert np.array_equal(got, want), (width, k, remainder)

    def test_window_equals_width(self):
        """k == n: a single window, error iff the whole add propagates."""
        a = pack_ints([0b1111, 0b0001, 0b1010], 4)
        b = pack_ints([0b0001, 0b1110, 0b0101], 4)
        got = scsa1_error_flags_swar(a, b, 4, 4)
        assert np.array_equal(got, _reference(a, b, 4, 4, "lsb"))

    def test_oversized_window_rejected_like_reference(self):
        """k > 63 exceeds single-field extraction in the reference path too;
        the kernel delegates and surfaces the same ValueError."""
        rng = np.random.default_rng(1)
        a = uniform_operands(256, 50, rng)
        b = uniform_operands(256, 50, rng)
        with pytest.raises(ValueError):
            _reference(a, b, 256, 70, "lsb")
        with pytest.raises(ValueError):
            scsa1_error_flags_swar(a, b, 256, 70)


class TestCornerCases:
    def test_adversarial_all_propagate(self):
        """a ^ b == all ones with carry-in chains crossing every boundary."""
        width = 64
        a = pack_ints([(1 << width) - 1, 0x5555555555555555, 1], width)
        b = pack_ints([1, 0xAAAAAAAAAAAAAAAA, (1 << width) - 1], width)
        for k in (4, 6, 9):
            got = scsa1_error_flags_swar(a, b, width, k)
            assert np.array_equal(got, _reference(a, b, width, k, "lsb"))

    def test_count_is_flag_sum(self):
        rng = np.random.default_rng(5)
        a = uniform_operands(64, 2000, rng)
        b = uniform_operands(64, 2000, rng)
        assert scsa1_error_count(a, b, 64, 6) == int(
            scsa1_error_flags_swar(a, b, 64, 6).sum()
        )

    def test_zero_operands_never_error(self):
        a = pack_ints([0] * 8, 128)
        b = pack_ints([0] * 8, 128)
        assert not scsa1_error_flags_swar(a, b, 128, 8).any()
