"""Protocol layer: validation, scheduler keys, response rendering."""

import pytest

from repro._version import package_version
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    affinity_key,
    error_response,
    identity_key,
    ok_response,
    parse_request,
    request_to_job,
    server_block,
    shard_of,
)


def _errors_payload(**overrides):
    payload = {
        "kind": "errors",
        "params": {"width": 32, "window": 8, "samples": 1024},
        "seed": 7,
    }
    payload.update(overrides)
    return payload


class TestParseRequest:
    def test_round_trip(self):
        request = parse_request(_errors_payload(id="r1"))
        assert request.kind == "errors"
        assert request.seed == 7
        assert request.request_id == "r1"
        assert request.param_dict()["width"] == 32
        assert request.param_dict()["distribution"] == "uniform"

    def test_params_canonical_order(self):
        a = parse_request(_errors_payload())
        b = parse_request(
            {"kind": "errors", "seed": 7,
             "params": {"samples": 1024, "window": 8, "width": 32}}
        )
        assert a == b
        assert identity_key(a) == identity_key(b)

    def test_default_seed_is_fixed(self):
        payload = _errors_payload()
        del payload["seed"]
        assert parse_request(payload).seed == 2012

    @pytest.mark.parametrize(
        "mutate, code",
        [
            (lambda p: p.update(kind="quantum"), "bad-kind"),
            (lambda p: p.update(proto=99), "unsupported-proto"),
            (lambda p: p.update(params="nope"), "bad-param"),
            (lambda p: p["params"].update(width=1), "bad-param"),
            (lambda p: p["params"].update(window=64), "bad-param"),  # > width
            (lambda p: p["params"].update(samples=0), "bad-param"),
            (lambda p: p["params"].update(distribution="cauchy"), "bad-param"),
            (lambda p: p["params"].update(counters=["bogus"]), "bad-param"),
            (lambda p: p["params"].update(extra=1), "bad-param"),
            (lambda p: p.update(seed=-1), "bad-param"),
            (lambda p: p.update(id="x" * 200), "bad-param"),
        ],
    )
    def test_rejects_malformed(self, mutate, code):
        payload = _errors_payload()
        mutate(payload)
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(payload)
        assert excinfo.value.code == code

    def test_not_an_object(self):
        with pytest.raises(ProtocolError):
            parse_request([1, 2, 3])

    def test_measure_defaults_window_from_solver(self):
        request = parse_request(
            {"kind": "measure", "params": {"architecture": "scsa1", "width": 64}}
        )
        from repro.analysis.sizing import scsa_window_size_for

        assert request.param_dict()["window"] == scsa_window_size_for(64, 1e-4)

    def test_measure_rejects_window_on_fixed_design(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {"kind": "measure",
                 "params": {"architecture": "kogge_stone", "width": 32,
                            "window": 4}}
            )

    def test_measure_rejects_unknown_architecture(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {"kind": "measure", "params": {"architecture": "cla", "width": 32}}
            )


class TestSchedulerKeys:
    def test_identity_includes_seed_and_samples(self):
        base = parse_request(_errors_payload())
        other_seed = parse_request(_errors_payload(seed=8))
        other_budget = parse_request(
            _errors_payload(params={"width": 32, "window": 8, "samples": 2048})
        )
        assert identity_key(base) != identity_key(other_seed)
        assert identity_key(base) != identity_key(other_budget)

    def test_affinity_excludes_seed_and_samples(self):
        base = parse_request(_errors_payload())
        other_seed = parse_request(_errors_payload(seed=8))
        other_budget = parse_request(
            _errors_payload(params={"width": 32, "window": 8, "samples": 2048})
        )
        other_point = parse_request(
            _errors_payload(params={"width": 64, "window": 8, "samples": 1024})
        )
        assert affinity_key(base) == affinity_key(other_seed)
        assert affinity_key(base) == affinity_key(other_budget)
        assert affinity_key(base) != affinity_key(other_point)

    def test_shard_of_stable_and_in_range(self):
        request = parse_request(_errors_payload())
        shard = shard_of(request, 4)
        assert shard == shard_of(request, 4)  # sha256, not randomized hash()
        assert 0 <= shard < 4
        assert shard_of(request, 1) == 0


class TestResponses:
    def test_request_to_job_uses_request_seed(self):
        request = parse_request(_errors_payload(seed=41))
        job = request_to_job(request)
        assert job.seed == 41
        assert job.samples == 1024
        assert job.width == 32 and job.window == 8

    def test_request_to_job_rejects_measure(self):
        request = parse_request(
            {"kind": "measure", "params": {"architecture": "scsa1", "width": 32}}
        )
        with pytest.raises(ValueError):
            request_to_job(request)

    def test_ok_response_carries_provenance_and_version(self):
        request = parse_request(_errors_payload(id="q"))
        body = ok_response(request, {"x": 1}, server_block("9.9.9", shard=3))
        assert body["ok"] is True
        assert body["id"] == "q"
        assert body["server"]["version"] == "9.9.9"
        assert body["server"]["shard"] == 3
        assert body["provenance"]["seed"] == 7
        assert body["provenance"]["repro_version"] == package_version()

    def test_error_response_shape(self):
        body = error_response("overloaded", "try later", "r9")
        assert body["ok"] is False
        assert body["proto"] == PROTOCOL_VERSION
        assert body["id"] == "r9"
        assert body["error"] == {"code": "overloaded", "message": "try later"}


class TestSimKind:
    def test_round_trip_and_defaults(self):
        request = parse_request(
            {"kind": "sim", "params": {"architecture": "vlcsa1", "width": 16}}
        )
        params = request.param_dict()
        assert params["vectors"] == 1024
        assert params["backend"] == "auto"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(
                {"kind": "sim",
                 "params": {"architecture": "vlcsa1", "width": 16,
                            "backend": "gpu"}}
            )
        assert err.value.code == "bad-param"

    def test_rejects_window_on_fixed_design(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {"kind": "sim",
                 "params": {"architecture": "kogge_stone", "width": 16,
                            "window": 4}}
            )

    def test_rejects_oversized_vectors(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {"kind": "sim",
                 "params": {"architecture": "vlcsa1", "width": 16,
                            "vectors": 1 << 20}}
            )

    def test_affinity_excludes_vectors_seed_and_backend(self):
        base = {"architecture": "vlcsa1", "width": 16}
        one = parse_request(
            {"kind": "sim", "params": dict(base, vectors=64), "seed": 1}
        )
        two = parse_request(
            {"kind": "sim",
             "params": dict(base, vectors=512, backend="vectorized"),
             "seed": 2}
        )
        assert affinity_key(one) == affinity_key(two)
        assert identity_key(one) != identity_key(two)
