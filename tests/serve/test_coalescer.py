"""Coalescer planning: dedup, shard grouping, batch splitting."""

from repro.serve.coalescer import PendingEntry, admit, plan_batches
from repro.serve.protocol import parse_request


def _request(width=32, window=8, samples=1024, seed=7, kind="errors"):
    if kind == "errors":
        params = {"width": width, "window": window, "samples": samples}
    else:
        params = {"architecture": "scsa1", "width": width, "window": window}
    return parse_request({"kind": kind, "params": params, "seed": seed})


def test_admit_deduplicates_identical_requests():
    pending = {}
    first = admit(pending, _request(), "waiter-a", shards=4)
    second = admit(pending, _request(), "waiter-b", shards=4)
    assert first is second
    assert first.fanout == 2
    assert len(pending) == 1


def test_admit_separates_different_seeds():
    pending = {}
    admit(pending, _request(seed=1), "a", shards=4)
    admit(pending, _request(seed=2), "b", shards=4)
    assert len(pending) == 2
    # ... but both still route to the same shard (same affinity).
    shards = {entry.shard for entry in pending.values()}
    assert len(shards) == 1


def test_plan_groups_by_shard_and_kind():
    pending = {}
    admit(pending, _request(seed=1), "a", shards=8)
    admit(pending, _request(seed=2), "b", shards=8)
    admit(pending, _request(kind="measure", seed=1), "c", shards=8)
    batches = plan_batches(list(pending.values()), max_batch=8)
    assert {(b.shard, b.kind) for b in batches} == {
        (entry.shard, entry.request.kind) for entry in pending.values()
    }
    for batch in batches:
        assert all(entry.shard == batch.shard for entry in batch.entries)
        assert all(entry.request.kind == batch.kind for entry in batch.entries)


def test_plan_splits_at_max_batch():
    pending = {}
    for seed in range(10):
        admit(pending, _request(seed=seed), f"w{seed}", shards=1)
    batches = plan_batches(list(pending.values()), max_batch=4)
    assert [len(b.entries) for b in batches] == [4, 4, 2]


def test_plan_is_deterministic():
    def build():
        pending = {}
        for seed in range(6):
            admit(pending, _request(width=32 + 32 * (seed % 2), seed=seed),
                  f"w{seed}", shards=4)
        return plan_batches(list(pending.values()), max_batch=3)

    first, second = build(), build()
    assert [(b.shard, b.kind, [e.key for e in b.entries]) for b in first] == [
        (b.shard, b.kind, [e.key for e in b.entries]) for b in second
    ]


def test_batch_requests_counts_fanout():
    pending = {}
    admit(pending, _request(), "a", shards=1)
    admit(pending, _request(), "b", shards=1)
    admit(pending, _request(seed=9), "c", shards=1)
    (batch,) = plan_batches(list(pending.values()), max_batch=8)
    assert len(batch.entries) == 2  # two unique computations
    assert batch.requests == 3  # three client requests


def test_pending_entry_fanout():
    entry = PendingEntry(request=_request(), key="k", shard=0)
    assert entry.fanout == 0
    entry.waiters.append(object())
    assert entry.fanout == 1
