"""Longrun request tests: protocol admission, durable execution, and
resume across a server restart.

``longrun`` is the serve-side face of the checkpointed engine: a request
names a durable job directory (the job's content digest under the
server's ``--job-root``), so re-submitting the identical request to a
restarted server restores finished chunks instead of recomputing them —
the serve satellite of the kill-and-resume bit-identity guarantee.
"""

from types import SimpleNamespace

import pytest

from repro.engine import run_job
from repro.engine.jobs import MonteCarloErrorJob
from repro.obs.collector import Collector
from repro.serve import protocol, shards
from repro.serve.client import ServeClient, ServeError
from repro.serve.harness import ServerThread
from repro.serve.protocol import (
    MAX_SAMPLES_PER_LONGRUN,
    MAX_SAMPLES_PER_REQUEST,
    ProtocolError,
    affinity_key,
    identity_key,
    parse_request,
    request_to_job,
)
from repro.serve.server import ServeConfig

# Three default-size chunks: small enough for a test, big enough that
# chunk accounting is visible in the response.
SAMPLES = 3 * (1 << 16)

PARAMS = {"width": 16, "window": 4, "samples": SAMPLES}


def _request(samples=SAMPLES, seed=7):
    return parse_request(
        {"kind": "longrun", "params": dict(PARAMS, samples=samples), "seed": seed}
    )


# -- protocol admission ---------------------------------------------------


def test_longrun_admits_past_the_errors_cap():
    big = MAX_SAMPLES_PER_REQUEST * 4
    with pytest.raises(ProtocolError):
        parse_request({"kind": "errors", "params": dict(PARAMS, samples=big)})
    request = parse_request({"kind": "longrun", "params": dict(PARAMS, samples=big)})
    assert request.kind == "longrun"


def test_longrun_has_its_own_cap():
    with pytest.raises(ProtocolError):
        parse_request(
            {"kind": "longrun",
             "params": dict(PARAMS, samples=MAX_SAMPLES_PER_LONGRUN + 1)}
        )


def test_longrun_request_names_the_same_job_as_errors():
    job = request_to_job(_request())
    assert isinstance(job, MonteCarloErrorJob)
    assert (job.width, job.window, job.samples) == (16, 4, SAMPLES)


def test_longrun_and_errors_do_not_coalesce_together():
    longrun = _request()
    errors = parse_request({"kind": "errors", "params": PARAMS, "seed": 7})
    assert affinity_key(longrun) != affinity_key(errors)
    assert identity_key(longrun) != identity_key(errors)
    assert identity_key(longrun) == identity_key(_request())


# -- shard execution ------------------------------------------------------


def test_execute_longrun_requires_a_job_root():
    with pytest.raises(ValueError, match="job root"):
        shards.execute_entries("longrun", [], Collector(), job_root=None)


def test_execute_longrun_matches_one_shot_and_resumes(tmp_path):
    entry = SimpleNamespace(request=_request())
    reference = run_job(request_to_job(entry.request)).aggregate

    collector = Collector()
    rows = shards.execute_entries(
        "longrun", [entry], collector, job_root=str(tmp_path)
    )
    assert len(rows) == 1
    row = rows[0]
    assert row["samples"] == reference.samples
    assert row["scsa1_errors"] == reference.scsa1_errors
    assert row["checkpoint"]["partial"] is False
    assert row["checkpoint"]["done_chunks"] == row["checkpoint"]["total_chunks"] == 3
    assert row["checkpoint"]["resumed_chunks"] == 0
    assert collector.counters["longrun_chunks"] == 3

    # The identical request lands on the same durable directory: pure
    # restore, identical counts, identical state digest.
    again = shards.execute_entries(
        "longrun", [SimpleNamespace(request=_request())], collector,
        job_root=str(tmp_path),
    )[0]
    assert again["checkpoint"]["resumed_chunks"] == 3
    assert again["scsa1_errors"] == row["scsa1_errors"]
    assert again["checkpoint"]["state_digest"] == row["checkpoint"]["state_digest"]


# -- the server surface ---------------------------------------------------


def _uds(tmp_path) -> str:
    return str(tmp_path / "serve.sock")


def test_longrun_without_job_root_is_rejected(tmp_path):
    uds = _uds(tmp_path)
    with ServerThread(ServeConfig(uds=uds)):
        client = ServeClient(uds=uds)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("longrun", PARAMS, seed=7)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "longrun-disabled"


def test_longrun_resumes_across_server_restart(tmp_path):
    """Satellite claim: a longrun's durable state outlives the server.

    The second server instance shares only the job-root directory with
    the first, yet answers the identical request by restoring every
    chunk the first instance computed — same counts, same state digest.
    """
    uds = _uds(tmp_path)
    job_root = str(tmp_path / "jobs")

    with ServerThread(ServeConfig(uds=uds, job_root=job_root)):
        first = ServeClient(uds=uds).evaluate("longrun", PARAMS, seed=7)
    assert first["result"]["checkpoint"]["partial"] is False
    assert first["result"]["checkpoint"]["resumed_chunks"] == 0

    with ServerThread(ServeConfig(uds=uds, job_root=job_root)):
        second = ServeClient(uds=uds).evaluate("longrun", PARAMS, seed=7)
    ckpt = second["result"]["checkpoint"]
    assert ckpt["resumed_chunks"] == ckpt["total_chunks"]  # pure restore
    assert second["result"]["scsa1_errors"] == first["result"]["scsa1_errors"]
    assert ckpt["state_digest"] == first["result"]["checkpoint"]["state_digest"]
