"""Warm shards: bounded queues, saturation accounting, batch execution."""

import threading
import time

from repro.obs.collector import Collector
from repro.serve.coalescer import admit, plan_batches
from repro.serve.protocol import errors_result, parse_request, request_to_job
from repro.serve.shards import ShardSet, WorkerShard, execute_entries


def test_shard_executes_in_order_and_counts():
    collector = Collector()
    shard = WorkerShard(0, depth=4, collector=collector)
    seen = []
    done = threading.Event()
    for i in range(3):
        assert shard.try_submit(lambda i=i: seen.append(i))
    shard.try_submit(done.set)
    assert done.wait(5)
    assert seen == [0, 1, 2]
    assert collector.counters["shard0.executed"] >= 3
    assert shard.drain(timeout=5)


def test_shard_saturation_rejects_instead_of_blocking():
    collector = Collector()
    shard = WorkerShard(1, depth=1, collector=collector)
    release = threading.Event()
    shard.try_submit(release.wait)  # occupies the worker
    # Fill the queue, then overflow it: try_submit must return, not block.
    accepted = sum(shard.try_submit(lambda: None) for _ in range(4))
    assert accepted < 4
    assert collector.counters["shard1.saturated"] == 4 - accepted
    release.set()
    assert shard.drain(timeout=5)


def test_shard_survives_raising_work():
    collector = Collector()
    shard = WorkerShard(2, depth=4, collector=collector)

    def boom():
        raise RuntimeError("work failed")

    done = threading.Event()
    shard.try_submit(boom)
    shard.try_submit(done.set)
    assert done.wait(5)  # the thread survived the exception
    assert collector.counters["shard2.work_errors"] == 1
    assert shard.drain(timeout=5)


def test_shard_set_drains_all_shards():
    shards = ShardSet(3, depth=4)
    ran = []
    for index in range(3):
        assert shards.try_submit(index, lambda index=index: ran.append(index))
    assert shards.drain(timeout=5)
    assert sorted(ran) == [0, 1, 2]
    assert len(shards) == 3


def test_execute_errors_batch_matches_direct_run():
    """One coalesced batch == each job run one-shot, bit for bit."""
    from repro.engine import run_job

    requests = [
        parse_request(
            {"kind": "errors",
             "params": {"width": 32, "window": 8, "samples": 2048},
             "seed": seed}
        )
        for seed in (5, 6)
    ]
    pending = {}
    for i, request in enumerate(requests):
        admit(pending, request, f"w{i}", shards=1)
    (batch,) = plan_batches(list(pending.values()), max_batch=8)
    rows = execute_entries("errors", batch.entries, Collector())
    direct = [errors_result(run_job(request_to_job(r)).aggregate) for r in requests]
    assert rows == direct


def test_execute_measure_tracks_cache_hits(tmp_path):
    request = parse_request(
        {"kind": "measure",
         "params": {"architecture": "scsa1", "width": 24, "window": 4}}
    )
    pending = {}
    admit(pending, request, "w", shards=1)
    (batch,) = plan_batches(list(pending.values()), max_batch=8)
    collector = Collector()
    cache_dir = str(tmp_path / "cache")
    first = execute_entries("measure", batch.entries, collector, cache_dir=cache_dir)
    second = execute_entries("measure", batch.entries, collector, cache_dir=cache_dir)
    assert first[0]["cache_hit"] is False
    assert second[0]["cache_hit"] is True
    assert first[0]["delay"] == second[0]["delay"]
    assert collector.counters["cache_hits"] == 1
    assert collector.counters["cache_misses"] == 1


def test_shard_busy_time_is_recorded():
    collector = Collector()
    shard = WorkerShard(0, depth=2, collector=collector)
    shard.try_submit(lambda: time.sleep(0.02))
    assert shard.drain(timeout=5)
    assert collector.timers["shard0.busy"] >= 0.02


def test_execute_sim_digest_is_backend_independent():
    """The sim kind's digest is the cross-backend identity witness."""
    requests = [
        parse_request(
            {"kind": "sim",
             "params": {"architecture": "vlcsa1", "width": 16,
                        "vectors": 200, "backend": backend},
             "seed": 12}
        )
        for backend in ("compiled", "vectorized")
    ]
    collector = Collector()
    rows = []
    for request in requests:
        pending = {}
        admit(pending, request, "w", shards=1)
        (batch,) = plan_batches(list(pending.values()), max_batch=8)
        rows.extend(execute_entries("sim", batch.entries, collector))
    assert rows[0]["digest"] == rows[1]["digest"]
    assert rows[0]["vectors"] == 200
    assert collector.counters["sim_requests"] == 2
    assert collector.counters["sim_vectors"] == 400
