"""End-to-end server tests over real sockets.

The asyncio tests run inside ``asyncio.run`` from sync test functions
(no pytest-asyncio dependency); the sync-client tests use the
:class:`ServerThread` harness.
"""

import asyncio
import json
import socket

import pytest

from repro._version import package_version
from repro.serve.client import AsyncServeClient, ServeClient, ServeError
from repro.serve.harness import ServerThread
from repro.serve.protocol import errors_result, parse_request, request_to_job
from repro.serve.server import ServeConfig, Server

SAMPLES = 2048


def _uds(tmp_path) -> str:
    return str(tmp_path / "serve.sock")


def _errors_params(width=32, window=8, samples=SAMPLES):
    return {"width": width, "window": window, "samples": samples}


def _direct_result(params, seed):
    """The bit-exact answer a one-shot engine run gives for a request."""
    from repro.engine import run_job

    request = parse_request({"kind": "errors", "params": params, "seed": seed})
    return errors_result(run_job(request_to_job(request)).aggregate)


def test_config_requires_a_listener():
    with pytest.raises(ValueError):
        ServeConfig(port=None, uds=None).validate()
    with pytest.raises(ValueError):
        Server(ServeConfig(uds="/tmp/x.sock", pool_workers=1))


def test_coalesced_equals_solo_equals_one_shot(tmp_path):
    """The tentpole determinism claim: N concurrent requests coalesced
    into one batch answer bit-identically to a solo request and to a
    direct one-shot engine run."""
    uds = _uds(tmp_path)

    async def scenario():
        server = Server(
            ServeConfig(uds=uds, shards=2, coalesce_ms=40, max_pending=256)
        )
        await server.start()
        try:
            async def one(seed):
                client = AsyncServeClient(uds=uds)
                try:
                    return await client.evaluate(
                        "errors", _errors_params(), seed=seed
                    )
                finally:
                    await client.close()

            # Burst: several seeds, duplicated, all inside one coalescing
            # window -> dedup + batching both engage.
            seeds = [5, 6, 5, 7, 6, 5]
            coalesced = await asyncio.gather(*(one(seed) for seed in seeds))
            # Solo: same requests far apart (each its own batch).
            solo = [await one(seed) for seed in (5, 6, 7)]
            metrics = server.metrics_snapshot()
            return coalesced, solo, metrics
        finally:
            await server.stop()

    coalesced, solo, metrics = asyncio.run(scenario())
    by_seed = {response["seed"]: response["result"] for response in solo}
    for response in coalesced:
        assert response["result"] == by_seed[response["seed"]]
    for seed in (5, 6, 7):
        assert by_seed[seed] == _direct_result(_errors_params(), seed)
    # The burst coalesced: nine requests cannot have taken nine batches.
    assert metrics["slo"]["coalescing_factor"] > 1.0
    assert metrics["slo"]["dedup_joins"] >= 2


def test_backpressure_sheds_with_wellformed_error(tmp_path):
    """Past the admission cap requests get an immediate, well-formed 429
    — the overload path answers, never hangs."""
    uds = _uds(tmp_path)

    async def scenario():
        server = Server(
            ServeConfig(uds=uds, shards=1, coalesce_ms=300, max_pending=3)
        )
        await server.start()
        try:
            async def one(i):
                client = AsyncServeClient(uds=uds)
                try:
                    return await client.evaluate(
                        "errors", _errors_params(samples=256), seed=i
                    )
                except ServeError as exc:
                    return exc
                finally:
                    await client.close()

            return await asyncio.gather(*(one(i) for i in range(8)))
        finally:
            await server.stop()

    outcomes = asyncio.run(scenario())
    ok = [o for o in outcomes if isinstance(o, dict)]
    shed = [o for o in outcomes if isinstance(o, ServeError)]
    assert ok and shed, "expected both served and shed requests"
    for error in shed:
        assert error.status == 429
        assert error.code == "overloaded"
    assert len(ok) <= 3  # nothing above the cap was admitted


def test_http_surface_and_version(tmp_path):
    uds = _uds(tmp_path)
    with ServerThread(ServeConfig(uds=uds, shards=1, coalesce_ms=0)):
        with ServeClient(uds=uds) as client:
            hello = client.hello()
            assert hello["service"] == "repro.serve"
            assert hello["version"] == package_version()
            assert "/v1/eval" in hello["endpoints"]

            health = client.health()
            assert health == {"ok": True, "draining": False}

            response = client.evaluate("errors", _errors_params(), seed=5)
            assert response["ok"] is True
            assert response["server"]["version"] == package_version()
            assert response["provenance"]["repro_version"] == package_version()
            assert response["result"]["samples"] == SAMPLES

            metrics = client.metrics()
            assert metrics["slo"]["ok"] == 1
            assert metrics["slo"]["latency_ms"]["p99"] > 0
            assert metrics["server"]["version"] == package_version()


def test_http_error_paths(tmp_path):
    uds = _uds(tmp_path)
    with ServerThread(ServeConfig(uds=uds, shards=1)):
        with ServeClient(uds=uds) as client:
            with pytest.raises(ServeError) as excinfo:
                client.evaluate("errors", {"width": 32})  # samples missing
            assert excinfo.value.status == 400
            assert excinfo.value.code == "bad-param"

            status, payload = client._request("POST", "/v1/eval", b"not json")
            assert status == 400 and payload["error"]["code"] == "bad-json"

            status, payload = client._request("GET", "/nope")
            assert status == 404 and payload["error"]["code"] == "not-found"


def test_tcp_listener(tmp_path):
    with ServerThread(ServeConfig(port=0, shards=1)) as handle:
        assert handle.bound_port
        with ServeClient(port=handle.bound_port) as client:
            assert client.hello()["service"] == "repro.serve"


def test_graceful_drain_answers_inflight_and_removes_socket(tmp_path):
    uds = _uds(tmp_path)

    async def scenario():
        server = Server(ServeConfig(uds=uds, shards=1, coalesce_ms=100))
        await server.start()

        async def one():
            client = AsyncServeClient(uds=uds)
            try:
                return await client.evaluate("errors", _errors_params(), seed=5)
            finally:
                await client.close()

        task = asyncio.ensure_future(one())
        await asyncio.sleep(0.02)  # request is parked in the coalescer
        await server.stop()  # drain must flush and answer it
        return await task

    response = asyncio.run(scenario())
    assert response["ok"] is True
    import os

    assert not os.path.exists(uds)


def test_draining_server_refuses_new_work(tmp_path):
    uds = _uds(tmp_path)

    async def scenario():
        server = Server(ServeConfig(uds=uds, shards=1))
        await server.start()
        server._draining = True  # as during stop()
        client = AsyncServeClient(uds=uds)
        try:
            await client.evaluate("errors", _errors_params(samples=64))
        except ServeError as exc:
            return exc
        finally:
            await client.close()
            server._draining = False
            await server.stop()

    error = asyncio.run(scenario())
    assert error.status == 503 and error.code == "draining"


def test_stale_unix_socket_is_replaced(tmp_path):
    uds = _uds(tmp_path)
    stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stale.bind(uds)
    stale.close()  # leaves the filesystem entry behind
    with ServerThread(ServeConfig(uds=uds, shards=1)):
        with ServeClient(uds=uds) as client:
            assert client.health()["ok"] is True


def test_metrics_snapshot_counts_sheds(tmp_path):
    uds = _uds(tmp_path)
    with ServerThread(
        ServeConfig(uds=uds, shards=1, coalesce_ms=0, max_pending=1)
    ) as handle:
        with ServeClient(uds=uds) as client:
            client.evaluate("errors", _errors_params(samples=64), seed=1)
        snapshot = handle.server.metrics_snapshot()
        assert snapshot["slo"]["requests"] == 1
        assert snapshot["slo"]["shed_rate"] == 0.0
        assert json.dumps(snapshot, default=float)  # JSON-serializable
