"""Loadgen: deterministic workloads and the gated SLO report."""

import asyncio

import pytest

from repro.serve.harness import ServerThread
from repro.serve.loadgen import LoadgenConfig, build_workload, run_loadgen
from repro.serve.server import ServeConfig


def test_workload_is_a_pure_function_of_the_seed():
    config = LoadgenConfig(uds="/tmp/x.sock", requests=40, seed=7)
    assert build_workload(config) == build_workload(config)
    other = LoadgenConfig(uds="/tmp/x.sock", requests=40, seed=8)
    assert build_workload(config) != build_workload(other)


def test_workload_repeats_design_points():
    config = LoadgenConfig(uds="/tmp/x.sock", requests=60, seed=7)
    workload = build_workload(config)
    unique = {
        (spec["kind"], tuple(sorted(spec["params"].items())), spec["seed"])
        for spec in workload
    }
    assert len(unique) < len(workload)  # repeats are the point


def test_config_validation():
    with pytest.raises(ValueError):
        LoadgenConfig(uds=None, port=None).validate()
    with pytest.raises(ValueError):
        LoadgenConfig(uds="/tmp/x.sock", requests=0).validate()
    with pytest.raises(ValueError):
        LoadgenConfig(uds="/tmp/x.sock", measure_fraction=1.5).validate()


def test_loadgen_against_live_server(tmp_path):
    uds = str(tmp_path / "serve.sock")
    config = LoadgenConfig(
        uds=uds,
        requests=30,
        rate=300.0,
        seed=11,
        samples=512,
        max_p99_ms=60_000.0,
        max_shed=0,
        min_coalescing=1.5,
        min_cache_hit_rate=0.01,
    )
    with ServerThread(
        ServeConfig(uds=uds, shards=2, coalesce_ms=20, max_pending=256,
                    cache_dir=str(tmp_path / "cache"))
    ):
        report = asyncio.run(run_loadgen(config))

    client = report["client"]
    assert client["requests"] == 30
    assert client["ok"] == 30 and client["errors"] == 0 and client["shed"] == 0
    assert client["unique_computations"] < 30
    assert client["latency_ms"]["p99"] >= client["latency_ms"]["p50"] > 0

    # Server-side SLOs made it into the report and the gates evaluated.
    slo = report["server"]["slo"]
    assert slo["requests"] == 30
    assert slo["coalescing_factor"] >= 1.5
    assert slo["cache_hit_rate"] > 0
    assert report["passed"] is True
    assert all(gate["ok"] for gate in report["gates"].values())
    assert report["gates"]["shed"]["actual"] == 0

    # Provenance-stamped like every other repro report.
    assert report["provenance"]["seed"] == 11
    assert report["schema_version"] == 1


def test_loadgen_gate_failure_flips_passed(tmp_path):
    uds = str(tmp_path / "serve.sock")
    config = LoadgenConfig(
        uds=uds, requests=5, rate=0.0, seed=3, samples=256,
        max_p99_ms=0.000001,  # impossible budget
    )
    with ServerThread(ServeConfig(uds=uds, shards=1, coalesce_ms=0)):
        report = asyncio.run(run_loadgen(config))
    assert report["passed"] is False
    assert report["gates"]["p99_ms"]["ok"] is False
