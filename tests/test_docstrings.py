"""Documentation coverage gate: every public item carries a docstring.

Walks the installed ``repro`` package and asserts that every module,
public class, public function, and public method is documented.  This is
the executable form of the "doc comments on every public item" policy.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    # properties/dataclass fields excluded above; plain
                    # public methods must be documented
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: {undocumented}"
