"""Tests for the FP significand-alignment traces (repro.inputs.floating)."""

import numpy as np
import pytest

from repro.inputs.floating import FORMATS, fp_significand_trace
from repro.model.behavioral import unpack_ints


class TestFormats:
    def test_known_formats(self):
        assert FORMATS["binary32"] == (24, 8)
        assert FORMATS["binary64"] == (53, 11)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            fp_significand_trace(10, fmt="binary128")

    @pytest.mark.parametrize("fmt,width", [("binary32", 28), ("binary64", 57)])
    def test_adder_width(self, fmt, width, rng):
        trace = fp_significand_trace(100, fmt=fmt, rng=rng)
        assert trace.width == width


class TestAlignmentSemantics:
    def test_operands_fit_width(self, rng):
        trace = fp_significand_trace(2000, rng=rng)
        limit = 1 << trace.width
        for v in unpack_ints(trace.a, trace.width):
            assert 0 <= v < limit
        for v in unpack_ints(trace.b, trace.width):
            assert 0 <= v < limit

    def test_big_operand_has_hidden_one_in_place(self, rng):
        """The larger significand sits left-aligned: its hidden 1 occupies
        bit sig_bits - 1 + 3 (above the G/R/S headroom)."""
        trace = fp_significand_trace(2000, rng=rng)
        sig_bits, _ = FORMATS["binary32"]
        top_bit = sig_bits - 1 + 3
        vals = unpack_ints(trace.a, trace.width)
        assert all((v >> top_bit) & 1 for v in vals)

    def test_effective_subtract_rate_near_half(self, rng):
        trace = fp_significand_trace(20_000, rng=rng)
        assert 0.45 < trace.effective_subtract.mean() < 0.55

    def test_effective_subtract_operands_are_complemented(self, rng):
        """Subtraction operands carry the one's complement pattern: their
        high bits (above the shifted small significand) are all ones."""
        trace = fp_significand_trace(5000, rng=rng)
        bvals = unpack_ints(trace.b, trace.width)
        top = trace.width - 1
        sub_hi = [
            (bvals[i] >> top) & 1
            for i in range(len(bvals))
            if trace.effective_subtract[i]
        ]
        # the complement of a right-shifted significand has its MSB set
        assert sub_hi and all(sub_hi)

    def test_deterministic_under_seed(self):
        t1 = fp_significand_trace(50, rng=np.random.default_rng(5))
        t2 = fp_significand_trace(50, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(t1.a, t2.a)
        np.testing.assert_array_equal(t1.b, t2.b)


class TestCarryProfile:
    def test_no_gaussian_style_long_chain_mass(self, rng):
        """The future-work answer: alignment + complement leave no
        near-full-width carry-chain population, so plain VLCSA 1 already
        suits the FP significand datapath."""
        from repro.model.carry_chains import chain_length_histogram

        trace = fp_significand_trace(50_000, rng=rng)
        hist = chain_length_histogram(trace.a, trace.b, trace.width)
        assert hist[1] > 0.3  # short chains dominate
        assert hist[trace.width - 4:].sum() < 0.01

    def test_vlcsa1_stall_rate_small(self, rng):
        from repro.model.behavioral import err0_flags, window_profile

        trace = fp_significand_trace(50_000, rng=rng)
        stall = float(
            err0_flags(window_profile(trace.a, trace.b, trace.width, 9)).mean()
        )
        assert stall < 0.01
