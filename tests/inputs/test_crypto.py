"""Tests for the instrumented cryptographic kernels (repro.inputs.crypto)."""


import numpy as np
import pytest

from repro.inputs.crypto import (
    InstrumentedBignum,
    WORKLOADS,
    _Recorder,
    diffie_hellman_trace,
    ec_elgamal_trace,
    ecdsa_trace,
    rsa_trace,
)

_PRIME_128 = 0xF5095887AF653B3C9434E14211DF86B9


@pytest.fixture
def bn():
    return InstrumentedBignum(_PRIME_128, _Recorder(100))


class TestBignumArithmetic:
    def test_limb_roundtrip(self, bn):
        for v in (0, 1, _PRIME_128 - 1, 0xDEADBEEF):
            assert bn._from_limbs(bn._to_limbs(v)) == v

    def test_add_limbs_matches_python(self, bn, pyrng):
        for _ in range(50):
            x = pyrng.randrange(_PRIME_128)
            y = pyrng.randrange(_PRIME_128)
            s, carry = bn.add_limbs(bn._to_limbs(x), bn._to_limbs(y))
            total = x + y
            assert bn._from_limbs(s) == total % (1 << 128)
            assert carry == total >> 128

    def test_sub_limbs_matches_python(self, bn, pyrng):
        for _ in range(50):
            x = pyrng.randrange(_PRIME_128)
            y = pyrng.randrange(_PRIME_128)
            d, borrow = bn.sub_limbs(bn._to_limbs(x), bn._to_limbs(y))
            assert bn._from_limbs(d) == (x - y) % (1 << 128)
            assert borrow == (1 if x < y else 0)

    def test_mod_add_sub(self, bn, pyrng):
        for _ in range(50):
            x = pyrng.randrange(_PRIME_128)
            y = pyrng.randrange(_PRIME_128)
            assert bn._from_limbs(bn.mod_add(bn._to_limbs(x), bn._to_limbs(y))) == (x + y) % _PRIME_128
            assert bn._from_limbs(bn.mod_sub(bn._to_limbs(x), bn._to_limbs(y))) == (x - y) % _PRIME_128

    def test_mont_mul_matches_python(self, bn, pyrng):
        rinv = pow(bn.r, -1, _PRIME_128)
        for _ in range(40):
            x = pyrng.randrange(_PRIME_128)
            y = pyrng.randrange(_PRIME_128)
            got = bn._from_limbs(bn.mont_mul(bn._to_limbs(x), bn._to_limbs(y)))
            assert got == (x * y * rinv) % _PRIME_128

    def test_mont_domain_roundtrip(self, bn, pyrng):
        for _ in range(20):
            v = pyrng.randrange(_PRIME_128)
            assert bn.from_mont(bn.to_mont(v)) == v

    def test_mod_pow_matches_python(self, bn, pyrng):
        for _ in range(10):
            base = pyrng.randrange(2, _PRIME_128)
            exp = pyrng.randrange(1, 1 << 64)
            assert bn.mod_pow(base, exp) == pow(base, exp, _PRIME_128)

    def test_mod_inv(self, bn, pyrng):
        for _ in range(5):
            v = pyrng.randrange(2, _PRIME_128)
            assert (v * bn.mod_inv(v)) % _PRIME_128 == 1

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            InstrumentedBignum(100, _Recorder(10))

    def test_every_add_is_recorded(self):
        rec = _Recorder(10_000)
        bn = InstrumentedBignum(_PRIME_128, rec)
        before = rec.total
        bn.mod_add(bn._to_limbs(123), bn._to_limbs(456))
        assert rec.total > before


class TestRecorder:
    def test_limit_respected(self):
        rec = _Recorder(5)
        for i in range(20):
            rec.record(i, i)
        assert len(rec.pairs) == 5
        assert rec.total == 20

    def test_arrays_shape(self):
        rec = _Recorder(10)
        rec.record(1, 2)
        rec.record(3, 4)
        a, b = rec.arrays()
        np.testing.assert_array_equal(a, [1, 3])
        np.testing.assert_array_equal(b, [2, 4])

    def test_empty_arrays(self):
        a, b = _Recorder(10).arrays()
        assert len(a) == 0 and len(b) == 0


class TestWorkloads:
    """Each trace generator self-checks its cryptography internally
    (round-trips / key agreement), so merely running it is a strong test."""

    def test_registry_contents(self):
        assert set(WORKLOADS) == {"RSA", "DH", "ECELGP", "ECDSP"}

    def test_rsa_trace(self):
        tr = rsa_trace(messages=1, limit=20_000)
        assert tr.name == "RSA"
        assert len(tr) > 1000
        assert tr.a.max() < (1 << 32)

    def test_dh_trace(self):
        tr = diffie_hellman_trace(exchanges=1, limit=20_000)
        assert tr.name == "DH"
        assert len(tr) > 1000

    def test_ec_elgamal_trace(self):
        tr = ec_elgamal_trace(messages=1, limit=20_000)
        assert tr.name == "ECELGP"
        assert len(tr) > 1000

    def test_ecdsa_trace(self):
        tr = ecdsa_trace(signatures=1, limit=20_000)
        assert tr.name == "ECDSP"
        assert len(tr) > 1000

    def test_traces_deterministic_per_seed(self):
        t1 = rsa_trace(messages=1, limit=500, seed=7)
        t2 = rsa_trace(messages=1, limit=500, seed=7)
        np.testing.assert_array_equal(t1.a, t2.a)
        np.testing.assert_array_equal(t1.b, t2.b)

    def test_crypto_chains_have_long_tail(self):
        """The Fig. 6.2 signature: real modular-arithmetic operand streams
        show substantially more long carry chains than uniform operands."""
        from repro.model.carry_chains import chain_length_histogram

        tr = rsa_trace(messages=1, limit=40_000)
        hist = chain_length_histogram(tr.a, tr.b, 32)
        assert hist[20:].sum() > 50 * 2.0 ** -20  # way above the uniform tail
