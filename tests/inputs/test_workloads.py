"""Tests for the application-trace generators (repro.inputs.workloads)."""

import numpy as np
import pytest

from repro.inputs.workloads import (
    APPLICATION_TRACES,
    address_trace,
    audio_trace,
    counter_trace,
)
from repro.model.behavioral import add_packed, unpack_ints


WIDTH = 64


class TestTraceShapes:
    @pytest.mark.parametrize("name", sorted(APPLICATION_TRACES))
    def test_trace_returns_packed_pairs(self, name, rng):
        a, b = APPLICATION_TRACES[name](WIDTH, 500, rng=rng)
        assert a.shape == b.shape == (500, 1)

    @pytest.mark.parametrize("name", sorted(APPLICATION_TRACES))
    def test_traces_deterministic_under_seeded_rng(self, name):
        a1, b1 = APPLICATION_TRACES[name](WIDTH, 100, rng=np.random.default_rng(3))
        a2, b2 = APPLICATION_TRACES[name](WIDTH, 100, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)


class TestSemantics:
    def test_address_sums_stay_positive_pointers(self, rng):
        a, b = address_trace(WIDTH, 2000, rng=rng)
        sums, _ = add_packed(a, b, WIDTH)
        vals = unpack_ints(sums, WIDTH)
        # pointer + offset stays far from the 2's-complement midpoint
        half = 1 << (WIDTH - 1)
        wrapped = sum(1 for v in vals if half // 2 < v < half)
        assert wrapped == 0

    def test_address_offsets_are_mixed_sign(self, rng):
        _, b = address_trace(WIDTH, 2000, rng=rng)
        vals = unpack_ints(b, WIDTH)
        half = 1 << (WIDTH - 1)
        negatives = sum(1 for v in vals if v >= half)
        assert 0.3 < negatives / len(vals) < 0.7

    def test_address_heap_bits_bound(self):
        with pytest.raises(ValueError, match="headroom"):
            address_trace(32, 10, heap_bits=32)

    def test_audio_is_small_signed(self, rng):
        a, _ = audio_trace(WIDTH, 3000, amplitude_bits=15, rng=rng)
        vals = unpack_ints(a, WIDTH)
        half = 1 << (WIDTH - 1)
        signed = [v - (1 << WIDTH) if v >= half else v for v in vals]
        assert max(abs(v) for v in signed) < (1 << 15)
        assert min(signed) < 0 < max(signed)

    def test_counter_increments_positive_and_tiny(self, rng):
        _, b = counter_trace(WIDTH, 1000, max_increment=8, rng=rng)
        vals = unpack_ints(b, WIDTH)
        assert all(1 <= v <= 8 for v in vals)


class TestStallBehaviour:
    def test_mixed_sign_traces_break_vlcsa1_but_not_vlcsa2(self, rng):
        """The thesis Ch. 6 story on program-shaped operands: sign
        extension wrecks VLCSA 1, VLCSA 2 absorbs it."""
        from repro.model.behavioral import (
            err0_flags,
            err1_flags,
            window_profile,
        )

        a, b = address_trace(WIDTH, 30_000, rng=rng)
        p1 = window_profile(a, b, WIDTH, 14, "lsb")
        p2 = window_profile(a, b, WIDTH, 13, "msb")
        vlcsa1_stall = float(err0_flags(p1).mean())
        vlcsa2_stall = float((err0_flags(p2) & err1_flags(p2)).mean())
        assert vlcsa1_stall > 0.1
        assert vlcsa2_stall < vlcsa1_stall / 20

    def test_counter_trace_never_stalls_at_thesis_window(self, rng):
        """Tiny monotone increments cannot build cross-window chains
        beyond the counter's own MSB region."""
        from repro.model.behavioral import err0_flags, window_profile

        a, b = counter_trace(WIDTH, 20_000, rng=rng)
        stall = float(err0_flags(window_profile(a, b, WIDTH, 14)).mean())
        assert stall < 0.01
