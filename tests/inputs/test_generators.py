"""Tests for the operand distribution generators (repro.inputs.generators)."""

import numpy as np
import pytest

from repro.inputs.generators import (
    GAUSSIAN_SIGMA_THESIS,
    gaussian_ints,
    gaussian_operands,
    twos_complement_encode,
    uniform_ints,
    uniform_operands,
)
from repro.model.behavioral import unpack_ints


class TestUniform:
    @pytest.mark.parametrize("width", [8, 64, 100, 512])
    def test_shape_and_range(self, width, rng):
        arr = uniform_operands(width, 500, rng)
        vals = unpack_ints(arr, width)
        assert len(vals) == 500
        assert all(0 <= v < (1 << width) for v in vals)

    def test_bits_are_fair(self, rng):
        arr = uniform_operands(32, 50_000, rng)
        vals = np.array(unpack_ints(arr, 32), dtype=np.uint64)
        for bit in (0, 15, 31):
            frac = ((vals >> np.uint64(bit)) & np.uint64(1)).mean()
            assert frac == pytest.approx(0.5, abs=0.01)

    def test_reproducible_with_seeded_rng(self):
        a = uniform_operands(64, 10, np.random.default_rng(1))
        b = uniform_operands(64, 10, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_uniform_ints_helper(self, rng):
        vals = uniform_ints(16, 20, rng)
        assert len(vals) == 20
        assert all(isinstance(v, int) and 0 <= v < (1 << 16) for v in vals)


class TestGaussianInts:
    def test_sigma_controls_spread(self, rng):
        small = gaussian_ints(20_000, sigma=10.0, rng=rng)
        large = gaussian_ints(20_000, sigma=1e6, rng=rng)
        assert small.std() < large.std()
        assert small.std() == pytest.approx(10.0, rel=0.05)

    def test_mean_zero(self, rng):
        vals = gaussian_ints(50_000, sigma=1000.0, rng=rng)
        assert abs(vals.mean()) < 20

    def test_thesis_sigma_constant(self):
        assert GAUSSIAN_SIGMA_THESIS == float(2 ** 32)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            gaussian_ints(10, sigma=0.0)


class TestTwosComplement:
    def test_positive_and_negative_roundtrip(self):
        width = 32
        vals = np.array([0, 1, -1, 123456, -123456, 2 ** 30, -(2 ** 30)], dtype=np.int64)
        arr = twos_complement_encode(vals, width)
        got = unpack_ints(arr, width)
        for v, enc in zip(vals, got):
            assert enc == int(v) % (1 << width)

    def test_sign_extension_fills_upper_limbs(self):
        width = 128
        arr = twos_complement_encode(np.array([-5], dtype=np.int64), width)
        assert unpack_ints(arr, width)[0] == (-5) % (1 << width)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="signed range"):
            twos_complement_encode(np.array([1 << 20], dtype=np.int64), 16)

    def test_width_one_rejected(self):
        with pytest.raises(ValueError):
            twos_complement_encode(np.array([0], dtype=np.int64), 1)


class TestGaussianOperands:
    @pytest.mark.parametrize("width", [64, 128, 512])
    def test_signed_values_encode_sign_extension(self, width, rng):
        arr = gaussian_operands(width, 2000, sigma=1e6, rng=rng)
        vals = unpack_ints(arr, width)
        half = 1 << (width - 1)
        negatives = sum(1 for v in vals if v >= half)
        assert 0.4 < negatives / len(vals) < 0.6

    def test_unsigned_takes_magnitudes(self, rng):
        arr = gaussian_operands(64, 2000, sigma=1e6, signed=False, rng=rng)
        vals = unpack_ints(arr, 64)
        # all small positive magnitudes, no sign-extension patterns
        assert all(v < (1 << 40) for v in vals)

    def test_thesis_sigma_fits_64_bits(self, rng):
        arr = gaussian_operands(64, 1000, rng=rng)
        vals = unpack_ints(arr, 64)
        assert all(0 <= v < (1 << 64) for v in vals)

    def test_small_sigma_means_long_sign_chains(self, rng):
        """The property VLCSA 2 exists for: Gaussian 2's-complement sums
        produce high-order all-propagate runs."""
        from repro.model.behavioral import err0_flags, window_profile

        a = gaussian_operands(64, 20_000, rng=rng)
        b = gaussian_operands(64, 20_000, rng=rng)
        rate = err0_flags(window_profile(a, b, 64, 14)).mean()
        assert rate == pytest.approx(0.25, abs=0.02)  # thesis Table 7.1
