"""Tests for the determinism AST lint (repro.devtools.determinism)."""

import textwrap
from pathlib import Path

from repro.devtools.determinism import (
    ALLOW_MARKER,
    check_paths,
    check_source,
    main,
)


def _lint(code):
    return check_source(textwrap.dedent(code), "snippet.py")


# ---------------------------------------------------------------------------
# Banned patterns
# ---------------------------------------------------------------------------


class TestBannedCalls:
    def test_global_random_module_calls(self):
        violations = _lint(
            """
            import random
            x = random.random()
            y = random.randint(0, 7)
            random.seed(42)
            """
        )
        assert len(violations) == 3
        assert all("random.Random(seed)" in v.message for v in violations)
        assert [v.line for v in violations] == [3, 4, 5]

    def test_aliased_import_tracked(self):
        violations = _lint(
            """
            import random as rnd
            rnd.shuffle([1, 2, 3])
            """
        )
        assert len(violations) == 1

    def test_from_random_import_tracked(self):
        violations = _lint(
            """
            from random import getrandbits as grb, randint
            grb(8)
            randint(0, 1)
            """
        )
        assert len(violations) == 2

    def test_numpy_global_state_banned_seeded_rng_allowed(self):
        violations = _lint(
            """
            import numpy as np
            bad = np.random.rand(3)
            also_bad = np.random.randint(0, 7)
            fine = np.random.default_rng(2012)
            also_fine = np.random.PCG64(1)
            """
        )
        assert len(violations) == 2
        assert all("default_rng" in v.message for v in violations)

    def test_naked_time_time_banned(self):
        violations = _lint(
            """
            import time
            from time import time as now
            t0 = time.time()
            t1 = now()
            ok = time.perf_counter()
            """
        )
        assert len(violations) == 2
        assert all("perf_counter" in v.message for v in violations)


# ---------------------------------------------------------------------------
# Sanctioned forms
# ---------------------------------------------------------------------------


class TestSanctionedForms:
    def test_seeded_random_instance_is_legal(self):
        assert (
            _lint(
                """
                import random
                rng = random.Random(2012)
                x = rng.random()
                y = rng.getrandbits(64)
                """
            )
            == []
        )

    def test_monotonic_clocks_are_legal(self):
        assert (
            _lint(
                """
                import time
                t0 = time.perf_counter()
                t1 = time.monotonic()
                time.sleep(0.01)
                """
            )
            == []
        )

    def test_unrelated_modules_untouched(self):
        assert (
            _lint(
                """
                import os
                import mymodule as random
                # A *local* name shadowing is fine: only real imports count.
                x = os.urandom(4)
                """
            )
            == []
        )

    def test_allow_marker_exempts_the_line(self):
        violations = _lint(
            f"""
            import time
            stamp = time.time()  # {ALLOW_MARKER}: provenance timestamp
            naked = time.time()
            """
        )
        assert len(violations) == 1
        assert violations[0].line == 4


# ---------------------------------------------------------------------------
# Path handling and CLI
# ---------------------------------------------------------------------------


class TestPaths:
    def test_test_trees_exempt(self, tmp_path):
        bad = "import random\nrandom.random()\n"
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "helper.py").write_text(bad)
        (tmp_path / "test_thing.py").write_text(bad)
        (tmp_path / "module.py").write_text(bad)
        violations = check_paths([tmp_path])
        assert [Path(v.path).name for v in violations] == ["module.py"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(1)\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nrandom.random()\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr()
        assert "dirty.py:2" in out.out
        assert main([str(tmp_path / "missing.py")]) == 2


def test_repository_source_tree_is_clean():
    """The invariant CI enforces: src/repro has no nondeterminism."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert src.is_dir()
    violations = check_paths([src])
    assert violations == [], "\n".join(map(str, violations))
