"""Cross-cutting property-based tests (hypothesis).

These tie the substrate layers together: randomly *generated circuits*
must survive every transformation (optimization, buffering, Verilog
round-trip) unchanged in function, and the three semantic engines
(bit-parallel simulation, BDDs, behavioural models) must agree wherever
they overlap.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.netlist.bdd import prove_equivalent
from repro.netlist.circuit import Circuit
from repro.netlist.optimize import buffer_fanout, optimize
from repro.netlist.simulate import simulate_batch
from repro.netlist.validate import check_circuit
from repro.rtl import from_verilog, to_verilog

_GATE_CHOICES = [
    ("AND2", 2), ("OR2", 2), ("XOR2", 2), ("NAND2", 2), ("NOR2", 2),
    ("XNOR2", 2), ("INV", 1), ("BUF", 1), ("MUX2", 3),
    ("AOI21", 3), ("OAI21", 3), ("AOI22", 4), ("OAI22", 4),
]


@st.composite
def random_circuits(draw, max_gates=30, num_inputs=5):
    """A random combinational DAG over ``num_inputs`` input bits."""
    c = Circuit("rand")
    nets = list(c.add_input_bus("x", num_inputs))
    use_consts = draw(st.booleans())
    if use_consts:
        nets.append(c.const0())
        nets.append(c.const1())
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(n_gates):
        kind, arity = draw(st.sampled_from(_GATE_CHOICES))
        ins = [nets[draw(st.integers(0, len(nets) - 1))] for _ in range(arity)]
        nets.append(c.add_gate(kind, ins))
    n_outputs = draw(st.integers(min_value=1, max_value=min(6, len(nets))))
    c.set_output_bus("y", nets[-n_outputs:])
    return c


def _all_vectors(num_inputs=5):
    return list(range(1 << num_inputs))


def _function_table(circuit):
    return simulate_batch(circuit, {"x": _all_vectors()})["y"]


class TestTransformationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(circuit=random_circuits())
    def test_optimize_preserves_function(self, circuit):
        opt, _ = optimize(circuit)
        check_circuit(opt)
        assert _function_table(opt) == _function_table(circuit)

    @settings(max_examples=40, deadline=None)
    @given(circuit=random_circuits(), limit=st.integers(min_value=2, max_value=6))
    def test_buffering_preserves_function_and_caps_fanout(self, circuit, limit):
        buffered = buffer_fanout(circuit, limit)
        check_circuit(buffered)
        fanout = buffered.fanout_counts()
        for net, count in enumerate(fanout):
            driver = buffered.driver_of(net)
            if driver is not None and driver.kind in ("CONST0", "CONST1"):
                continue  # tie cells are exempt (zero load slope)
            assert count <= limit, buffered.net_name(net)
        assert _function_table(buffered) == _function_table(circuit)

    @settings(max_examples=40, deadline=None)
    @given(circuit=random_circuits())
    def test_verilog_roundtrip_preserves_function(self, circuit):
        restored = from_verilog(to_verilog(circuit))
        assert _function_table(restored) == _function_table(circuit)

    @settings(max_examples=25, deadline=None)
    @given(circuit=random_circuits(max_gates=18))
    def test_bdd_agrees_with_simulation(self, circuit):
        """Formal equivalence of a circuit with itself after optimize,
        which exercises BDD construction over every gate kind."""
        opt, _ = optimize(circuit)
        assert prove_equivalent(circuit, opt).equivalent

    @settings(max_examples=30, deadline=None)
    @given(circuit=random_circuits())
    def test_optimize_idempotent_on_function(self, circuit):
        once, _ = optimize(circuit)
        twice, _ = optimize(once)
        assert _function_table(once) == _function_table(twice)


class TestAdderAlgebra:
    widths = st.integers(min_value=1, max_value=40)

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 24) - 1),
        b=st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_commutativity_across_designs(self, a, b):
        from tests.test_properties import _ADDERS_24  # self-import for cache

        for c in _ADDERS_24:
            out_ab = simulate_batch(c, {"a": [a], "b": [b]})["sum"][0]
            out_ba = simulate_batch(c, {"a": [b], "b": [a]})["sum"][0]
            assert out_ab == out_ba == a + b, c.name

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 24) - 1),
        b=st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_vlcsa_never_lies(self, a, b):
        """The reliability contract under arbitrary operands."""
        out1 = simulate_batch(_VLCSA1_24, {"a": [a], "b": [b]})
        out2 = simulate_batch(_VLCSA2_24, {"a": [a], "b": [b]})
        for out in (out1, out2):
            assert out["sum_rec"][0] == a + b
            if not out["err"][0]:
                assert out["sum"][0] == a + b

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 24) - 1),
        b=st.integers(min_value=0, max_value=(1 << 24) - 1),
    )
    def test_speculation_underestimates(self, a, b):
        """SCSA's result is never above the true sum (thesis §3.3)."""
        got = simulate_batch(_SCSA_24, {"a": [a], "b": [b]})["sum"][0]
        assert got <= a + b


# Module-level design cache (builds once, reused across hypothesis examples).
from repro.adders import (  # noqa: E402
    build_brent_kung_adder,
    build_carry_select_adder,
    build_kogge_stone_adder,
    build_ling_adder,
    build_ripple_adder,
)
from repro.core import build_scsa_adder, build_vlcsa1, build_vlcsa2  # noqa: E402

_ADDERS_24 = [
    build_ripple_adder(24),
    build_kogge_stone_adder(24),
    build_brent_kung_adder(24),
    build_carry_select_adder(24),
    build_ling_adder(24),
]
_VLCSA1_24 = build_vlcsa1(24, 6)
_VLCSA2_24 = build_vlcsa2(24, 6)
_SCSA_24 = build_scsa_adder(24, 6)


class TestInterchangeSoundness:
    @settings(max_examples=30, deadline=None)
    @given(circuit=random_circuits())
    def test_json_roundtrip_preserves_function(self, circuit):
        from repro.netlist.export import from_json, to_json

        restored = from_json(to_json(circuit))
        assert _function_table(restored) == _function_table(circuit)
        assert restored.count_by_kind() == circuit.count_by_kind()

    @settings(max_examples=20, deadline=None)
    @given(circuit=random_circuits(max_gates=15))
    def test_fault_simulation_sanity(self, circuit):
        """Fault-free simulation inside the fault engine matches the
        reference simulator, and coverage is a valid fraction."""
        from repro.netlist.faults import fault_coverage

        vectors = {"x": _all_vectors()}
        report = fault_coverage(circuit, vectors)
        assert 0.0 <= report.coverage <= 1.0
        assert report.detected + len(report.undetected) == report.total

    @settings(max_examples=20, deadline=None)
    @given(circuit=random_circuits(max_gates=15))
    def test_exhaustive_vectors_dominate_partial(self, circuit):
        """More vectors never reduce stuck-at coverage."""
        from repro.netlist.faults import fault_coverage

        some = fault_coverage(circuit, {"x": _all_vectors()[:4]})
        all_v = fault_coverage(circuit, {"x": _all_vectors()})
        assert all_v.coverage >= some.coverage
