"""Verilog emission / readback round-trip tests (repro.rtl)."""

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.simulate import simulate_batch
from repro.rtl import from_verilog, to_verilog
from repro.rtl.reader import VerilogParseError

from tests.conftest import random_pairs


def _equivalent(c1, c2, width, seed=3):
    pairs = random_pairs(width, 60, seed)
    av = [a for a, _ in pairs]
    bv = [b for _, b in pairs]
    out1 = simulate_batch(c1, {"a": av, "b": bv})
    out2 = simulate_batch(c2, {"a": av, "b": bv})
    assert out1 == out2


class TestEmission:
    def test_header_and_ports(self):
        from repro.adders import build_ripple_adder

        v = to_verilog(build_ripple_adder(8, name="ripple8"))
        assert "module ripple8 (a, b, sum);" in v
        assert "input [7:0] a;" in v
        assert "output [8:0] sum;" in v
        assert v.rstrip().endswith("endmodule")

    def test_every_gate_becomes_one_assign(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(6)
        v = to_verilog(c)
        # one assign per gate plus one per output bit
        assert v.count("assign ") == c.num_gates + 7

    def test_single_bit_ports_have_no_range(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        v = to_verilog(c)
        assert "input a;" in v
        assert "output y;" in v

    def test_bad_identifier_rejected(self):
        c = Circuit("bad name")
        a = c.add_input("a")
        c.set_output("y", a)
        with pytest.raises(NetlistError, match="identifier"):
            to_verilog(c)

    def test_no_outputs_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        with pytest.raises(NetlistError, match="no outputs"):
            to_verilog(c)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "generator_name",
        ["ripple", "kogge_stone", "brent_kung", "carry_select", "conditional_sum"],
    )
    def test_conventional_adders_roundtrip(self, generator_name):
        from repro.adders import ADDER_GENERATORS

        c = ADDER_GENERATORS[generator_name](16)
        c2 = from_verilog(to_verilog(c))
        assert c2.num_gates == c.num_gates
        _equivalent(c, c2, 16)

    def test_scsa_roundtrip(self):
        from repro.core import build_scsa_adder

        c = build_scsa_adder(24, 6)
        _equivalent(c, from_verilog(to_verilog(c)), 24)

    def test_vlcsa1_roundtrip(self):
        from repro.core import build_vlcsa1

        c = build_vlcsa1(20, 5)
        _equivalent(c, from_verilog(to_verilog(c)), 20)

    def test_vlcsa2_roundtrip(self):
        from repro.core import build_vlcsa2

        c = build_vlcsa2(20, 5)
        _equivalent(c, from_verilog(to_verilog(c)), 20)

    def test_optimized_circuit_roundtrip(self):
        """Compound AOI/OAI cells and buffers survive the round trip."""
        from repro.adders import build_kogge_stone_adder
        from repro.netlist.optimize import optimize

        c, _ = optimize(build_kogge_stone_adder(16))
        _equivalent(c, from_verilog(to_verilog(c)), 16)

    def test_constants_roundtrip(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.and2(a, c.const1()))
        c.set_output("z", c.const0())
        c2 = from_verilog(to_verilog(c))
        out = simulate_batch(c2, {"a": [0, 1]})
        assert out["y"] == [0, 1]
        assert out["z"] == [0, 0]


class TestParserErrors:
    def test_no_module_rejected(self):
        with pytest.raises(VerilogParseError, match="module"):
            from_verilog("wire x;")

    def test_no_outputs_rejected(self):
        with pytest.raises(VerilogParseError, match="outputs"):
            from_verilog("module t (a);\n  input a;\nendmodule\n")

    def test_undefined_net_rejected(self):
        src = (
            "module t (a, y);\n  input a;\n  output y;\n"
            "  assign y = ghost;\nendmodule\n"
        )
        with pytest.raises(VerilogParseError, match="undefined net"):
            from_verilog(src)

    def test_unassigned_output_bit_rejected(self):
        src = (
            "module t (a, y);\n  input a;\n  output [1:0] y;\n"
            "  assign y[0] = a;\nendmodule\n"
        )
        with pytest.raises(VerilogParseError, match="unassigned"):
            from_verilog(src)

    def test_unparseable_expression_rejected(self):
        src = (
            "module t (a, y);\n  input a;\n  output y;\n"
            "  assign y = a +++ a;\nendmodule\n"
        )
        with pytest.raises(VerilogParseError, match="unrecognized"):
            from_verilog(src)
