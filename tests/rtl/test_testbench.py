"""Tests for the self-checking testbench emitter (repro.rtl.testbench)."""

import pytest

from repro.netlist.circuit import NetlistError
from repro.rtl import to_testbench


def _adder_tb(width=8, vectors=None):
    from repro.adders import build_ripple_adder

    c = build_ripple_adder(width)
    if vectors is None:
        vectors = {"a": [1, 2, 250], "b": [3, 200, 250]}
    return c, to_testbench(c, vectors)


def test_testbench_has_module_and_dut():
    c, tb = _adder_tb()
    assert f"module {c.name}_tb;" in tb
    assert f"{c.name} dut " in tb
    assert "$finish;" in tb


def test_expected_values_are_golden_sums():
    _, tb = _adder_tb(vectors={"a": [100], "b": [55]})
    # 100 + 55 = 155 = 0x9b on the 9-bit sum bus
    assert "9'h9b" in tb


def test_one_check_per_vector_per_output():
    c, tb = _adder_tb(vectors={"a": [1, 2, 3], "b": [4, 5, 6]})
    assert tb.count("!==") == 3


def test_custom_tb_name():
    from repro.adders import build_ripple_adder

    c = build_ripple_adder(4)
    tb = to_testbench(c, {"a": [1], "b": [2]}, tb_name="mytb")
    assert "module mytb;" in tb


def test_empty_vectors_rejected():
    from repro.adders import build_ripple_adder

    c = build_ripple_adder(4)
    with pytest.raises(NetlistError, match="at least one"):
        to_testbench(c, {"a": [], "b": []})


def test_pass_banner_present():
    _, tb = _adder_tb()
    assert '$display("PASS")' in tb
