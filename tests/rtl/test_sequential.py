"""Tests for the sequential Verilog wrapper (repro.rtl.sequential)."""

import pytest

from repro.core import build_vlcsa1, build_vlcsa2, build_vlsa
from repro.netlist.circuit import Circuit, NetlistError
from repro.rtl.sequential import to_sequential_wrapper


@pytest.fixture(scope="module")
def wrapper_text():
    return to_sequential_wrapper(build_vlcsa1(32, 8))


class TestStructure:
    def test_module_header_and_ports(self, wrapper_text):
        assert "module vlcsa1_32w8_seq (" in wrapper_text
        for port in ("clk", "rst_n", "in_valid", "in_ready", "out_valid", "result"):
            assert port in wrapper_text
        assert "input  wire [31:0] a," in wrapper_text
        assert "output reg  [32:0] result" in wrapper_text

    def test_instantiates_core_by_name(self, wrapper_text):
        assert "vlcsa1_32w8 core (" in wrapper_text
        assert ".sum(spec_sum)" in wrapper_text
        assert ".sum_rec(rec_sum)" in wrapper_text

    def test_handshake_logic_present(self, wrapper_text):
        assert "assign in_ready = !(op_live && err && ~stalled);" in wrapper_text
        assert "stalled <= 1'b1;   // STALL" in wrapper_text
        assert "result    <= rec_sum;" in wrapper_text

    def test_capture_gated_by_ready(self, wrapper_text):
        """Capture must not clobber operands in the stall-trigger cycle."""
        assert "if (in_valid && in_ready) begin" in wrapper_text

    def test_reset_clears_state(self, wrapper_text):
        assert "if (!rst_n) begin" in wrapper_text
        assert "out_valid <= 1'b0;" in wrapper_text

    def test_custom_wrapper_name(self):
        text = to_sequential_wrapper(build_vlcsa1(16, 4), wrapper_name="my_adder")
        assert "module my_adder (" in text


class TestContract:
    def test_works_for_all_variable_latency_designs(self):
        for circuit in (build_vlcsa1(16, 4), build_vlcsa2(16, 4), build_vlsa(16, 4)):
            text = to_sequential_wrapper(circuit)
            assert f"module {circuit.name}_seq (" in text

    def test_missing_ports_rejected(self):
        c = Circuit("plain")
        a = c.add_input_bus("a", 4)
        c.add_input_bus("b", 4)
        c.set_output_bus("sum", a)
        with pytest.raises(NetlistError, match="lacks"):
            to_sequential_wrapper(c)

    def test_wrong_inputs_rejected(self):
        c = Circuit("odd")
        x = c.add_input_bus("x", 4)
        c.set_output_bus("sum", x)
        c.set_output_bus("sum_rec", x)
        c.set_output("err", c.const0())
        with pytest.raises(NetlistError, match="inputs 'a' and 'b'"):
            to_sequential_wrapper(c)
