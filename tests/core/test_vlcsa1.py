"""End-to-end tests for VLCSA 1 (thesis Ch. 5)."""

import pytest

from repro.core import build_vlcsa1
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs


@pytest.fixture(scope="module")
def vlcsa_24_6():
    c = build_vlcsa1(24, 6)
    check_circuit(c)
    return c


class TestReliability:
    """The defining property: the adder as a whole never returns a wrong
    answer — the speculative result is only presented when ERR is clear,
    and recovery is exact."""

    def test_recovery_always_exact(self, vlcsa_24_6):
        pairs = random_pairs(24, 500, seed=1)
        out = simulate_batch(
            vlcsa_24_6,
            {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]},
        )
        for (a, b), rec in zip(pairs, out["sum_rec"]):
            assert rec == a + b

    def test_valid_speculation_is_exact(self, vlcsa_24_6):
        pairs = random_pairs(24, 500, seed=2)
        out = simulate_batch(
            vlcsa_24_6,
            {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]},
        )
        for (a, b), s, err in zip(pairs, out["sum"], out["err"]):
            if not err:
                assert s == a + b, (a, b)

    def test_every_actual_error_is_flagged(self, vlcsa_24_6):
        pairs = random_pairs(24, 800, seed=3)
        out = simulate_batch(
            vlcsa_24_6,
            {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]},
        )
        wrongs = flagged = 0
        for (a, b), s, err in zip(pairs, out["sum"], out["err"]):
            if s != a + b:
                wrongs += 1
                assert err == 1, (a, b)
            flagged += err
        assert wrongs > 0  # k=6 on 24 bits must mis-speculate in 800 tries
        # detection may overestimate but not wildly (small window sizes)
        assert flagged >= wrongs

    def test_valid_is_complement_of_err(self, vlcsa_24_6):
        for a, b in random_pairs(24, 100, seed=4):
            out = simulate(vlcsa_24_6, {"a": a, "b": b})
            assert out["valid"] == 1 - out["err"]


class TestKnownVectors:
    def test_clean_addition_no_stall(self, vlcsa_24_6):
        # No carries at all: every window truncation is vacuous.
        out = simulate(vlcsa_24_6, {"a": 0x555555, "b": 0x2A2A2A})
        assert out["err"] == 0
        assert out["sum"] == 0x555555 + 0x2A2A2A

    def test_cross_window_chain_stalls(self, vlcsa_24_6):
        # Generate at bit 0, propagate run across windows 1..2.
        out = simulate(vlcsa_24_6, {"a": 0x00FFFF, "b": 0x000001})
        assert out["err"] == 1
        assert out["sum_rec"] == 0x00FFFF + 1

    def test_direct_generate_into_next_window_is_fine(self, vlcsa_24_6):
        # A generate that only feeds the adjacent window is speculated
        # correctly (spec carry = group generate).
        out = simulate(vlcsa_24_6, {"a": 0x00003F, "b": 0x000001})
        assert out["err"] == 0
        assert out["sum"] == 0x40


class TestParameterSpace:
    @pytest.mark.parametrize("width,k", [(12, 3), (16, 4), (20, 5), (32, 8), (31, 7)])
    def test_reliable_across_geometries(self, width, k):
        c = build_vlcsa1(width, k)
        pairs = random_pairs(width, 200, seed=width)
        out = simulate_batch(
            c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )
        for (a, b), s, rec, err in zip(pairs, out["sum"], out["sum_rec"], out["err"]):
            assert rec == a + b
            if not err:
                assert s == a + b

    def test_alternative_recovery_network(self):
        c = build_vlcsa1(24, 6, recovery_network="brent_kung")
        for a, b in random_pairs(24, 150, seed=6):
            assert simulate(c, {"a": a, "b": b})["sum_rec"] == a + b


class TestTimingShape:
    def test_detection_not_much_slower_than_speculation(self):
        """Thesis Ch. 5.1: the detection path is comparable to the
        speculative path — the property VLSA lacks."""
        from repro.analysis.compare import measure_vlcsa1

        m = measure_vlcsa1(64, 14)
        assert m.t_detect <= 1.15 * m.t_spec

    def test_recovery_fits_two_cycles(self):
        """Thesis Ch. 5.2: recovery completes within two clock cycles."""
        from repro.analysis.compare import measure_vlcsa1
        from repro.model.latency import VariableLatencyTiming

        for n, k in [(64, 14), (256, 16)]:
            m = measure_vlcsa1(n, k)
            t = VariableLatencyTiming(m.t_spec, m.t_detect, m.t_recover)
            assert t.recovery_fits_two_cycles
