"""Tests for the window-prefix error recovery (thesis Ch. 5.2)."""

import pytest

from repro.core.recovery import build_recovery, window_carries
from repro.core.window import build_window, plan_windows
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import simulate, simulate_batch

from tests.conftest import random_pairs


def _recovery_circuit(width, k, network="kogge_stone"):
    c = Circuit("rec")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    plan = plan_windows(width, k)
    windows = [build_window(c, a, b, lo, hi) for lo, hi in plan.bounds]
    c.set_output_bus("sum_rec", build_recovery(c, windows, network))
    return c


@pytest.mark.parametrize("width,k", [(8, 3), (16, 4), (24, 7), (32, 8), (33, 8)])
def test_recovery_is_always_exact(width, k):
    c = _recovery_circuit(width, k)
    pairs = random_pairs(width, 300, seed=width + k)
    out = simulate_batch(
        c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
    )["sum_rec"]
    for (a, b), got in zip(pairs, out):
        assert got == a + b, (a, b)


def test_recovery_exhaustive_small():
    c = _recovery_circuit(6, 2)
    for a in range(64):
        for b in range(64):
            assert simulate(c, {"a": a, "b": b})["sum_rec"] == a + b


@pytest.mark.parametrize("network", ["serial", "brent_kung", "sklansky"])
def test_recovery_with_alternative_prefix_networks(network):
    c = _recovery_circuit(20, 5, network)
    for a, b in random_pairs(20, 120, seed=11):
        assert simulate(c, {"a": a, "b": b})["sum_rec"] == a + b


def test_window_carries_match_true_carries():
    width, k = 16, 4
    c = Circuit("wc")
    a = c.add_input_bus("a", width)
    b = c.add_input_bus("b", width)
    plan = plan_windows(width, k)
    windows = [build_window(c, a, b, lo, hi) for lo, hi in plan.bounds]
    carries = window_carries(
        c, [w.group_g for w in windows], [w.group_p for w in windows]
    )
    c.set_output_bus("carries", carries)
    for x, y in random_pairs(width, 200, seed=5):
        got = simulate(c, {"a": x, "b": y})["carries"]
        for i, (lo, hi) in enumerate(plan.bounds):
            mask = (1 << hi) - 1
            true_carry = ((x & mask) + (y & mask)) >> hi
            assert (got >> i) & 1 == true_carry, (x, y, i)


def test_mismatched_group_signal_lengths_rejected():
    c = Circuit("wc")
    g = c.add_input_bus("g", 3)
    p = c.add_input_bus("p", 4)
    with pytest.raises(ValueError, match="equal length"):
        window_carries(c, g, p)


def test_recovery_reuses_window_intermediates():
    """Recovery must not instantiate a second set of window prefix trees:
    its incremental cost over the bare windows is the m-bit prefix network
    plus one mux row (thesis Fig. 5.2)."""
    width, k = 32, 8
    bare = Circuit("bare")
    a = bare.add_input_bus("a", width)
    b = bare.add_input_bus("b", width)
    plan = plan_windows(width, k)
    windows = [build_window(bare, a, b, lo, hi) for lo, hi in plan.bounds]
    bare_gates = bare.num_gates
    build_recovery(bare, windows)
    extra = bare.num_gates - bare_gates
    # m-1 selected windows * k muxes + m-bit prefix (few gates each)
    assert extra < width + 6 * plan.num_windows
