"""Tests for the SCSA 1 speculative adder (thesis Ch. 3-4)."""

import pytest

from repro.core import build_scsa_adder, plan_windows
from repro.model.behavioral import pack_ints, scsa1_error_flags, window_profile
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs


def _reference_scsa(a, b, width, k, remainder="lsb"):
    """Pure-Python SCSA 1: truncate inter-window carry chains."""
    plan = plan_windows(width, k, remainder)
    out = 0
    spec_carry = 0
    for lo, hi in plan.bounds:
        size = hi - lo
        mask = (1 << size) - 1
        aw = (a >> lo) & mask
        bw = (b >> lo) & mask
        total = aw + bw + spec_carry
        out |= (total & mask) << lo
        spec_carry = (aw + bw) >> size  # group generate (chain truncated)
    return out | (spec_carry << width)


class TestSpeculativeSemantics:
    @pytest.mark.parametrize("width,k", [(8, 3), (12, 4), (16, 5), (16, 7)])
    def test_matches_reference_model_exhaustively_sampled(self, width, k):
        c = build_scsa_adder(width, k)
        check_circuit(c)
        pairs = random_pairs(width, 400, seed=width * k)
        out = simulate_batch(
            c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )["sum"]
        for (a, b), got in zip(pairs, out):
            assert got == _reference_scsa(a, b, width, k), (a, b)

    def test_single_window_is_exact(self):
        c = build_scsa_adder(8, 8)
        for a, b in random_pairs(8, 100):
            assert simulate(c, {"a": a, "b": b})["sum"] == a + b

    def test_window_bigger_than_width_is_exact(self):
        c = build_scsa_adder(6, 32)
        for a in range(64):
            for b in range(0, 64, 5):
                assert simulate(c, {"a": a, "b": b})["sum"] == a + b

    def test_speculative_errors_exist_and_match_behavioral_model(self):
        width, k = 24, 4
        c = build_scsa_adder(width, k)
        pairs = random_pairs(width, 600, seed=9)
        av = [a for a, _ in pairs]
        bv = [b for _, b in pairs]
        out = simulate_batch(c, {"a": av, "b": bv})["sum"]
        profile = window_profile(
            pack_ints(av, width), pack_ints(bv, width), width, k
        )
        flags = scsa1_error_flags(profile)
        n_err = 0
        for i, (a, b) in enumerate(pairs):
            wrong = out[i] != a + b
            assert wrong == bool(flags[i]), (a, b)
            n_err += wrong
        assert n_err > 0  # k=4 on 24 bits must show errors in 600 samples

    def test_error_is_always_underestimate_never_overestimate(self):
        """SCSA's speculative sum is <= the true sum (truncation drops
        carries, never adds them) — the low-error-magnitude argument of
        thesis section 3.3."""
        width, k = 20, 4
        c = build_scsa_adder(width, k)
        pairs = random_pairs(width, 500, seed=77)
        out = simulate_batch(
            c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )["sum"]
        for (a, b), got in zip(pairs, out):
            assert got <= a + b

    def test_thesis_fig_3_6_example(self):
        """The worked error-magnitude example of Fig. 3.6 (k=8 windows):
        a generate in the low window rides an all-propagate middle window;
        the chain into the top window is truncated, so 0x7FFFFF + 1 yields
        speculative 0x7F0000 instead of 0x800000 — relative error 1/2^7,
        'which is quite small'."""
        c = build_scsa_adder(24, 8)
        got = simulate(c, {"a": 0x7FFFFF, "b": 0x000001})["sum"]
        assert got == 0x7F0000
        assert (0x800000 - got) / 0x800000 == pytest.approx(1 / 2 ** 7)

    def test_remainder_placement_changes_plan_not_correct_cases(self):
        width, k = 20, 6
        c_lsb = build_scsa_adder(width, k, remainder="lsb")
        c_msb = build_scsa_adder(width, k, remainder="msb")
        for a, b in random_pairs(width, 200):
            want = a + b
            got_l = simulate(c_lsb, {"a": a, "b": b})["sum"]
            got_m = simulate(c_msb, {"a": a, "b": b})["sum"]
            # both speculate; on carry-free operands both are exact
            if (a ^ b) == a + b:  # no carries anywhere
                assert got_l == want and got_m == want


class TestStructure:
    def test_area_scales_linearly_with_width_at_fixed_k(self):
        from repro.netlist.area import area

        a128 = area(build_scsa_adder(128, 16))
        a256 = area(build_scsa_adder(256, 16))
        assert a256 / a128 == pytest.approx(2.0, rel=0.1)

    def test_faster_and_smaller_than_kogge_stone_at_thesis_operating_point(self):
        """The headline claim (Figs. 7.2/7.3) at n=256, k=16."""
        from repro.adders import build_kogge_stone_adder
        from repro.netlist.area import area
        from repro.netlist.timing import critical_delay

        scsa = build_scsa_adder(256, 16)
        ks = build_kogge_stone_adder(256)
        assert critical_delay(scsa) < critical_delay(ks)
        assert area(scsa) < area(ks)

    def test_mux_count_matches_selected_windows(self):
        width, k = 64, 16
        c = build_scsa_adder(width, k)
        # windows 1..3 are selected: 3 windows * 16 bits of muxes
        assert c.count_by_kind()["MUX2"] == 48
