"""Tests for window planning and the shared-prefix window adder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import build_window, plan_windows
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import simulate_batch


class TestPlanWindows:
    def test_exact_division(self):
        plan = plan_windows(64, 16)
        assert plan.bounds == ((0, 16), (16, 32), (32, 48), (48, 64))
        assert plan.num_windows == 4
        assert plan.sizes == (16, 16, 16, 16)

    def test_remainder_lsb_puts_small_window_first(self):
        plan = plan_windows(64, 14)
        assert plan.sizes == (8, 14, 14, 14, 14)
        assert plan.bounds[0] == (0, 8)

    def test_remainder_msb_puts_small_window_last(self):
        plan = plan_windows(64, 14)
        plan_msb = plan_windows(64, 14, remainder="msb")
        assert plan_msb.sizes == (14, 14, 14, 14, 8)
        assert plan_msb.bounds[-1] == (56, 64)
        assert plan.num_windows == plan_msb.num_windows

    def test_windows_tile_exactly(self):
        for width in (17, 30, 64, 100, 511):
            for k in (3, 5, 13):
                for rem in ("lsb", "msb"):
                    plan = plan_windows(width, k, rem)
                    covered = []
                    for lo, hi in plan.bounds:
                        covered.extend(range(lo, hi))
                    assert covered == list(range(width)), (width, k, rem)

    def test_window_larger_than_width_gives_single_window(self):
        plan = plan_windows(8, 32)
        assert plan.bounds == ((0, 8),)

    def test_window_equal_to_width_gives_single_window(self):
        plan = plan_windows(8, 8)
        assert plan.bounds == ((0, 8),)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            plan_windows(0, 4)
        with pytest.raises(ValueError):
            plan_windows(8, 0)
        with pytest.raises(ValueError):
            plan_windows(8, 4, remainder="middle")

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=600),
        k=st.integers(min_value=1, max_value=64),
        rem=st.sampled_from(["lsb", "msb"]),
    )
    def test_all_windows_at_most_k_and_at_most_one_smaller(self, width, k, rem):
        plan = plan_windows(width, k, rem)
        sizes = plan.sizes
        assert all(1 <= s <= k for s in sizes)
        if width > k:
            assert sum(1 for s in sizes if s < k) <= 1


class TestBuildWindow:
    def _window_circuit(self, width, lo, hi):
        c = Circuit("w")
        a = c.add_input_bus("a", width)
        b = c.add_input_bus("b", width)
        w = build_window(c, a, b, lo, hi)
        c.set_output_bus("s0", w.s0)
        c.set_output_bus("s1", w.s1)
        c.set_output("gg", w.group_g)
        c.set_output("gp", w.group_p)
        return c

    @pytest.mark.parametrize("lo,hi", [(0, 4), (2, 6), (3, 8)])
    def test_both_hypotheses_exhaustive(self, lo, hi):
        width, k = 8, hi - lo
        c = self._window_circuit(width, lo, hi)
        mask = (1 << k) - 1
        xs, ys = [], []
        for a in range(1 << width):
            xs.append(a)
            ys.append((a * 37 + 11) % (1 << width))
        out = simulate_batch(c, {"a": xs, "b": ys})
        for idx, (a, b) in enumerate(zip(xs, ys)):
            aw = (a >> lo) & mask
            bw = (b >> lo) & mask
            assert out["s0"][idx] == (aw + bw) & mask
            assert out["s1"][idx] == (aw + bw + 1) & mask
            assert out["gg"][idx] == ((aw + bw) >> k) & 1
            assert out["gp"][idx] == (1 if (aw ^ bw) == mask else 0)

    def test_bad_bounds_rejected(self):
        c = Circuit("w")
        a = c.add_input_bus("a", 8)
        b = c.add_input_bus("b", 8)
        with pytest.raises(ValueError, match="bounds"):
            build_window(c, a, b, 4, 3)
        with pytest.raises(ValueError, match="bounds"):
            build_window(c, a, b, 0, 9)

    def test_alternative_network(self):
        c = Circuit("w")
        a = c.add_input_bus("a", 8)
        b = c.add_input_bus("b", 8)
        w = build_window(c, a, b, 0, 8, network_name="brent_kung")
        c.set_output_bus("s0", w.s0)
        out = simulate_batch(c, {"a": [200], "b": [100]})
        assert out["s0"][0] == (300) & 0xFF
