"""End-to-end tests for VLCSA 2 (thesis Ch. 6)."""

import numpy as np
import pytest

from repro.core import build_vlcsa2
from repro.core.scsa2 import build_scsa2_adder
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs


def _gaussianish_pairs(width, count, sigma_bits, seed=0):
    """2's-complement operands with small magnitudes (long sign chains)."""
    gen = np.random.default_rng(seed)
    vals = np.rint(gen.normal(0, 2 ** sigma_bits, size=2 * count)).astype(np.int64)
    a = [int(v) % (1 << width) for v in vals[:count]]
    b = [int(v) % (1 << width) for v in vals[count:]]
    return list(zip(a, b))


@pytest.fixture(scope="module", params=["dual", "select"])
def vlcsa2_28_7(request):
    c = build_vlcsa2(28, 7, style=request.param)
    check_circuit(c)
    return c


class TestReliability:
    def test_recovery_always_exact(self, vlcsa2_28_7):
        pairs = random_pairs(28, 400, seed=1) + _gaussianish_pairs(28, 400, 10)
        out = simulate_batch(
            vlcsa2_28_7,
            {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]},
        )
        for (a, b), rec in zip(pairs, out["sum_rec"]):
            assert rec == a + b

    def test_valid_one_cycle_result_is_exact(self, vlcsa2_28_7):
        pairs = random_pairs(28, 400, seed=2) + _gaussianish_pairs(28, 400, 10, 3)
        out = simulate_batch(
            vlcsa2_28_7,
            {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]},
        )
        for (a, b), s, err in zip(pairs, out["sum"], out["err"]):
            if not err:
                assert s == a + b, (a, b)

    def test_err_is_and_of_detectors(self, vlcsa2_28_7):
        for a, b in random_pairs(28, 150, seed=4):
            out = simulate(vlcsa2_28_7, {"a": a, "b": b})
            assert out["err"] == (out["err0"] & out["err1"])
            assert out["valid"] == 1 - out["err"]


class TestGaussianBehaviour:
    def test_long_sign_extension_chains_resolved_without_stall(self):
        """The headline VLCSA 2 case: small positive + small negative with
        a positive sum — the carry rides the sign-extension run to the MSB
        and S*1 absorbs it (thesis Ch. 6.4)."""
        c = build_vlcsa2(28, 7)
        # a = 100, b = -3  ->  97; sign chain spans windows 1..3
        a = 100
        b = (-3) % (1 << 28)
        out = simulate(c, {"a": a, "b": b})
        assert out["err0"] == 1  # VLCSA 1 would have stalled here
        assert out["err1"] == 0
        assert out["err"] == 0
        assert out["sum"] == (a + b) % (1 << 29)

    def test_negative_sum_does_not_even_raise_err0(self):
        c = build_vlcsa2(28, 7)
        # a = 3, b = -100 -> negative sum: the all-propagate run carries a
        # 0, so truncation is exact and S*0 is used.
        a = 3
        b = (-100) % (1 << 28)
        out = simulate(c, {"a": a, "b": b})
        assert out["err0"] == 0
        assert out["sum"] == (a + b) % (1 << 29)

    def test_stall_rate_low_on_gaussian_stream(self):
        c = build_vlcsa2(28, 7)
        pairs = _gaussianish_pairs(28, 1500, 10, seed=9)
        out = simulate_batch(
            c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )
        stall_rate = sum(out["err"]) / len(pairs)
        mix_rate = sum(out["err0"]) / len(pairs)
        assert mix_rate > 0.1   # ERR0 fires on ~a quarter of the stream
        assert stall_rate < 0.02  # but almost all are absorbed by S*1

    def test_vlcsa1_would_stall_where_vlcsa2_does_not(self):
        """Direct head-to-head on the same Gaussian stream (Tables 7.1/7.2
        in miniature)."""
        from repro.core import build_vlcsa1

        width, k = 28, 7
        c1 = build_vlcsa1(width, k)
        c2 = build_vlcsa2(width, k)
        pairs = _gaussianish_pairs(width, 1000, 10, seed=11)
        feed = {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        stalls1 = sum(simulate_batch(c1, feed)["err"])
        stalls2 = sum(simulate_batch(c2, feed)["err"])
        assert stalls1 > 10 * max(stalls2, 1)


class TestDualOutputs:
    def test_dual_style_exposes_both_hypotheses(self):
        c = build_vlcsa2(20, 5, style="dual")
        assert "sum0" in c.output_buses and "sum1" in c.output_buses

    def test_select_style_is_smaller(self):
        dual = build_vlcsa2(64, 13, style="dual")
        select = build_vlcsa2(64, 13, style="select")
        from repro.netlist.area import area

        assert area(select) < area(dual)

    def test_invalid_style_rejected(self):
        with pytest.raises(ValueError, match="style"):
            build_vlcsa2(20, 5, style="fancy")

    def test_scsa2_standalone_hypotheses(self):
        """Fig. 6.6 semantics: sum0 truncates chains, sum1 assumes a hot
        carry wherever the previous window propagates."""
        c = build_scsa2_adder(20, 5)
        check_circuit(c)
        for a, b in random_pairs(20, 200, seed=13):
            out = simulate(c, {"a": a, "b": b})
            if out["sum0"] == a + b or out["sum1"] == a + b:
                pass  # at least sometimes exact; correctness is selective
        # window-chain case: sum1 correct where sum0 is not
        a, b = 0x0FFFF, 0x00001
        out = simulate(c, {"a": a, "b": b})
        assert out["sum0"] != a + b
        assert out["sum1"] == a + b
