"""The two selection-correctness theorems behind VLCSA's reliability.

Theorem 1 (thesis Ch. 5.1): ``ERR0 = 0``  ⟺  the SCSA 1 speculative result
S*0 is exact.  (Forward direction makes VLCSA error-free; the backward
direction shows ERR0 never under-detects a two-window chain.)

Theorem 2 (thesis Ch. 6.6 case 2): ``ERR0 = 1 and ERR1 = 0``  ⟹  the
alternate result S*1 is exact.

These are property-tested with hypothesis over the *behavioural* window
algebra and cross-checked at gate level in test_vlcsa1/test_vlcsa2.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import build_err0, build_err1
from repro.model.behavioral import (
    err0_flags,
    err1_flags,
    pack_ints,
    scsa1_error_flags,
    scsa2_s1_error_flags,
    window_profile,
)
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import simulate


operand_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 24) - 1), min_size=1, max_size=64
)


@settings(max_examples=120, deadline=None)
@given(av=operand_lists, bv=operand_lists, k=st.integers(min_value=2, max_value=12),
       rem=st.sampled_from(["lsb", "msb"]))
def test_theorem_err0_iff_s0_exact(av, bv, k, rem):
    n = min(len(av), len(bv))
    width = 24
    a = pack_ints(av[:n], width)
    b = pack_ints(bv[:n], width)
    profile = window_profile(a, b, width, k, rem)
    np.testing.assert_array_equal(err0_flags(profile), scsa1_error_flags(profile))


@settings(max_examples=120, deadline=None)
@given(av=operand_lists, bv=operand_lists, k=st.integers(min_value=2, max_value=12),
       rem=st.sampled_from(["lsb", "msb"]))
def test_theorem_err1_guards_s1(av, bv, k, rem):
    n = min(len(av), len(bv))
    width = 24
    a = pack_ints(av[:n], width)
    b = pack_ints(bv[:n], width)
    profile = window_profile(a, b, width, k, rem)
    flagged_s1_usable = err0_flags(profile) & ~err1_flags(profile)
    s1_wrong = scsa2_s1_error_flags(profile)
    assert not np.any(flagged_s1_usable & s1_wrong)


# Gaussian-like operands exercise the long-chain corner the theorems guard.
signed_small = st.integers(min_value=-(1 << 16), max_value=(1 << 16) - 1)


@settings(max_examples=120, deadline=None)
@given(av=st.lists(signed_small, min_size=1, max_size=48),
       bv=st.lists(signed_small, min_size=1, max_size=48),
       k=st.integers(min_value=2, max_value=12))
def test_theorems_on_twos_complement_operands(av, bv, k):
    n = min(len(av), len(bv))
    width = 24
    def enc(vs):
        return pack_ints([v % (1 << width) for v in vs[:n]], width)

    a, b = enc(av), enc(bv)
    profile = window_profile(a, b, width, k, "msb")
    np.testing.assert_array_equal(err0_flags(profile), scsa1_error_flags(profile))
    usable = err0_flags(profile) & ~err1_flags(profile)
    assert not np.any(usable & scsa2_s1_error_flags(profile))


class TestDetectorCircuits:
    def _err_circuit(self, m):
        c = Circuit("det")
        g = c.add_input_bus("g", m)
        p = c.add_input_bus("p", m)
        c.set_output("err0", build_err0(c, g, p))
        c.set_output("err1", build_err1(c, p))
        return c

    @pytest.mark.parametrize("m", [2, 3, 5, 8])
    def test_exhaustive_against_formula(self, m):
        c = self._err_circuit(m)
        for g in range(1 << m):
            for p in range(1 << m):
                out = simulate(c, {"g": g, "p": p})
                want0 = any(
                    ((p >> (i + 1)) & 1) and ((g >> i) & 1) for i in range(m - 1)
                )
                want1 = any(
                    ((p >> i) & 1) and not ((p >> (i + 1)) & 1)
                    for i in range(m - 1)
                )
                assert out["err0"] == int(want0), (g, p)
                assert out["err1"] == int(want1), (g, p)

    def test_single_window_detectors_are_constant_zero(self):
        c = Circuit("det1")
        g = c.add_input_bus("g", 1)
        p = c.add_input_bus("p", 1)
        c.set_output("err0", build_err0(c, g, p))
        c.set_output("err1", build_err1(c, p))
        for g_v in (0, 1):
            for p_v in (0, 1):
                out = simulate(c, {"g": g_v, "p": p_v})
                assert out["err0"] == 0
                assert out["err1"] == 0

    def test_mismatched_lengths_rejected(self):
        c = Circuit("det")
        g = c.add_input_bus("g", 3)
        p = c.add_input_bus("p", 2)
        with pytest.raises(ValueError, match="equal length"):
            build_err0(c, g, p)

    def test_err1_zero_means_propagate_set_upward_closed(self):
        """ERR1 = 0 ⟺ {i : P[i] = 1} is upward closed — the structural fact
        behind Theorem 2."""
        m = 6
        c = self._err_circuit(m)
        for p in range(1 << m):
            out = simulate(c, {"g": 0, "p": p})
            bits = [(p >> i) & 1 for i in range(m)]
            upward_closed = all(
                bits[j] >= bits[i] for i in range(m) for j in range(i, m)
            )
            assert (out["err1"] == 0) == upward_closed, p
