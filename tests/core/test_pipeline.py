"""Tests for the gate-level VLCSA pipeline (repro.core.pipeline)."""

import random

import pytest

from repro.core.pipeline import PipelinedAdder, build_vlcsa_pipeline


@pytest.fixture(scope="module")
def pipe_20_5():
    return PipelinedAdder(20, 5)


class TestProtocol:
    def test_all_results_correct_in_order(self, pipe_20_5):
        gen = random.Random(1)
        pairs = [(gen.randrange(1 << 20), gen.randrange(1 << 20)) for _ in range(300)]
        results, stats = pipe_20_5.run_stream(pairs)
        assert results == [a + b for a, b in pairs]
        assert stats.operations == 300

    def test_fast_path_throughput_is_one_per_cycle(self, pipe_20_5):
        """Chain-free operands never stall: N ops in N + latency cycles."""
        pairs = [(1 << i, 0) for i in range(16)] * 5
        results, stats = pipe_20_5.run_stream(pairs)
        assert results == [a + b for a, b in pairs]
        assert stats.stall_cycles == 0
        assert stats.cycles <= len(pairs) + 3  # pipeline fill/drain

    def test_stall_costs_exactly_one_extra_cycle(self, pipe_20_5):
        clean = [(5, 6)] * 10
        _, base = pipe_20_5.run_stream(clean)
        one_stall = list(clean)
        one_stall[4] = ((1 << 15) - 1, 1)  # cross-window chain
        results, stalled = pipe_20_5.run_stream(one_stall)
        assert results == [a + b for a, b in one_stall]
        assert stalled.cycles == base.cycles + 1
        assert stalled.stall_cycles == 1

    def test_back_to_back_stalls(self, pipe_20_5):
        pairs = [((1 << 15) - 1, 1)] * 8
        results, stats = pipe_20_5.run_stream(pairs)
        assert results == [a + b for a, b in pairs]
        assert stats.stall_cycles == 8

    def test_capture_during_stall_trigger_does_not_corrupt(self, pipe_20_5):
        """The protocol-bug regression: an operand offered in the very
        cycle a stall is detected must not clobber the recovery operands."""
        gen = random.Random(9)
        pairs = []
        for _ in range(60):
            pairs.append(((1 << 15) - 1, 1))  # stall trigger
            pairs.append((gen.randrange(1 << 20), gen.randrange(1 << 20)))
        results, _ = pipe_20_5.run_stream(pairs)
        assert results == [a + b for a, b in pairs]

    def test_stall_rate_matches_behavioral_model(self, pipe_20_5):

        from repro.model.behavioral import err0_flags, pack_ints, window_profile

        gen = random.Random(3)
        pairs = [(gen.randrange(1 << 20), gen.randrange(1 << 20)) for _ in range(500)]
        _, stats = pipe_20_5.run_stream(pairs)
        flags = err0_flags(
            window_profile(
                pack_ints([p[0] for p in pairs], 20),
                pack_ints([p[1] for p in pairs], 20),
                20,
                5,
            )
        )
        assert stats.stall_cycles == int(flags.sum())

    def test_empty_stream(self, pipe_20_5):
        results, stats = pipe_20_5.run_stream([])
        assert results == []
        assert stats.cycles == 0

    def test_drain_guard(self, pipe_20_5):
        with pytest.raises(RuntimeError, match="drain"):
            pipe_20_5.run_stream([(1, 1)], max_cycles=0)


class TestStructure:
    def test_design_register_banks(self):
        design = build_vlcsa_pipeline(16, 4)
        q_buses = {r.q_bus for r in design.registers}
        assert q_buses == {
            "a_q", "b_q", "op_live_q", "stalled_q", "out_valid_q", "result_q"
        }
        assert sorted(design.free_inputs) == ["a", "b", "in_valid"]

    def test_reset_state_is_idle(self):
        design = build_vlcsa_pipeline(16, 4)
        out = design.step({"a": 0, "b": 0, "in_valid": 0})
        assert out["out_valid"] == 0
        assert out["in_ready"] == 1
