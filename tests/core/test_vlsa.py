"""Tests for the VLSA baseline (thesis ref [17], Ch. 7.4)."""


import pytest

from repro.core import build_vlsa, build_vlsa_speculative
from repro.core.vlsa import speculative_levels
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs


class TestSpeculativeAdder:
    def test_speculation_exact_when_chains_short(self):
        c = build_vlsa_speculative(16, 16)  # l >= n: full lookahead
        for a, b in random_pairs(16, 150, seed=1):
            assert simulate(c, {"a": a, "b": b})["sum"] == a + b

    def test_speculation_wrong_on_long_chain(self):
        c = build_vlsa_speculative(32, 4)  # l_eff = 4
        # generate at bit 0 followed by a 20-propagate run
        a, b = 0x001FFFFF, 0x00000001
        got = simulate(c, {"a": a, "b": b})["sum"]
        assert got != a + b

    def test_matches_behavioral_error_model(self):
        from repro.model.behavioral import pack_ints, vlsa_error_flags

        width, l = 28, 8
        c = build_vlsa_speculative(width, l)
        l_eff = 1 << speculative_levels(l)
        pairs = random_pairs(width, 600, seed=3)
        av = [a for a, _ in pairs]
        bv = [b for _, b in pairs]
        out = simulate_batch(c, {"a": av, "b": bv})["sum"]
        flags = vlsa_error_flags(pack_ints(av, width), pack_ints(bv, width), width, l_eff)
        for i, (a, b) in enumerate(pairs):
            assert (out[i] != a + b) == bool(flags[i]), (a, b)

    @pytest.mark.parametrize("l,levels", [(1, 1), (2, 1), (3, 2), (4, 2), (17, 5), (21, 5)])
    def test_speculative_levels(self, l, levels):
        assert speculative_levels(l) == levels

    def test_invalid_chain_length_rejected(self):
        with pytest.raises(ValueError):
            speculative_levels(0)


class TestFullVlsa:
    @pytest.fixture(scope="class")
    def vlsa_28_8(self):
        c = build_vlsa(28, 8)
        check_circuit(c)
        return c

    def test_recovery_always_exact(self, vlsa_28_8):
        pairs = random_pairs(28, 400, seed=5)
        out = simulate_batch(
            vlsa_28_8, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )
        for (a, b), rec in zip(pairs, out["sum_rec"]):
            assert rec == a + b

    def test_unflagged_speculation_is_exact(self, vlsa_28_8):
        pairs = random_pairs(28, 600, seed=6)
        out = simulate_batch(
            vlsa_28_8, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )
        for (a, b), s, err in zip(pairs, out["sum"], out["err"]):
            if not err:
                assert s == a + b, (a, b)

    def test_detection_overestimates(self, vlsa_28_8):
        """The all-propagate-run detector flags runs even when the carry
        entering them is 0 (false positives exist by design)."""
        # a ^ b has a long propagate run but no generate below it.
        a, b = 0x0FFFF00, 0x0000000
        out = simulate(vlsa_28_8, {"a": a, "b": b})
        assert out["sum"] == a + b  # actually correct
        assert out["err"] == 1  # but conservatively flagged

    def test_detection_catches_true_error(self, vlsa_28_8):
        a, b = 0x00FFFFF, 0x0000001
        out = simulate(vlsa_28_8, {"a": a, "b": b})
        assert out["err"] == 1
        assert out["sum"] != a + b
        assert out["sum_rec"] == a + b


class TestVlsaVersusVlcsa:
    """The thesis' comparative claims (Ch. 7.4), at the Table 7.3 points."""

    def test_vlsa_detection_slower_than_its_speculation(self):
        from repro.analysis.compare import measure_vlsa

        m = measure_vlsa(256, 20)
        assert m.t_detect >= 0.95 * m.t_spec  # detection dominates or ties

    def test_vlcsa1_single_cycle_faster_than_vlsa(self):
        from repro.analysis.compare import measure_vlcsa1, measure_vlsa
        from repro.analysis.sizing import THESIS_TABLE_7_3

        for n in (64, 256, 512):
            k, l = THESIS_TABLE_7_3[n]
            assert measure_vlcsa1(n, k).delay < measure_vlsa(n, l).delay

    def test_vlcsa1_smaller_than_vlsa(self):
        from repro.analysis.compare import measure_vlcsa1, measure_vlsa
        from repro.analysis.sizing import THESIS_TABLE_7_3

        for n in (64, 256, 512):
            k, l = THESIS_TABLE_7_3[n]
            assert measure_vlcsa1(n, k).area < measure_vlsa(n, l).area

    def test_vlsa_bigger_than_kogge_stone(self):
        """Thesis Fig. 7.5: VLSA area is 14-32% above Kogge-Stone."""
        from repro.analysis.compare import measure_kogge_stone, measure_vlsa
        from repro.analysis.sizing import THESIS_TABLE_7_3

        for n in (64, 256):
            _, l = THESIS_TABLE_7_3[n]
            assert measure_vlsa(n, l).area > measure_kogge_stone(n).area
