"""Tests for the persistent content-addressed corpus (repro.fuzz.corpus)."""

import json

from repro.fuzz.corpus import Corpus, CorpusEntry


def _entry(a=0x12, b=0x34, **kw):
    kw.setdefault("design", "vlcsa1")
    kw.setdefault("width", 16)
    kw.setdefault("window", 4)
    return CorpusEntry(a=a, b=b, **kw)


def test_entry_digest_is_content_addressed():
    assert _entry().digest == _entry().digest
    assert _entry().digest != _entry(a=0x13).digest
    assert _entry().digest != _entry(reason="divergence").digest


def test_entry_round_trips_through_json():
    entry = _entry(a=(1 << 64) + 5, b=7, reason="divergence", check="err0")
    back = CorpusEntry.from_dict(json.loads(entry.canonical()))
    assert back == entry


def test_add_deduplicates():
    corpus = Corpus()
    assert corpus.add(_entry()) is True
    assert corpus.add(_entry()) is False
    assert len(corpus) == 1


def test_corpus_persists_and_reloads(tmp_path):
    d = str(tmp_path / "corpus")
    corpus = Corpus(d)
    corpus.add(_entry())
    corpus.add(_entry(a=0x99, design="scsa2"))
    reloaded = Corpus(d)
    assert len(reloaded) == 2
    assert reloaded.corpus_hash() == corpus.corpus_hash()


def test_corpus_tolerates_corrupt_files(tmp_path):
    d = tmp_path / "corpus"
    corpus = Corpus(str(d))
    corpus.add(_entry())
    (d / "zz_corrupt.json").write_text("{not json")
    (d / "notes.txt").write_text("ignored")
    assert len(Corpus(str(d))) == 1


def test_corpus_hash_is_order_independent(tmp_path):
    one = Corpus()
    two = Corpus()
    entries = [_entry(a=i) for i in range(5)]
    for e in entries:
        one.add(e)
    for e in reversed(entries):
        two.add(e)
    assert one.corpus_hash() == two.corpus_hash()


def test_pairs_for_filters_by_design_point():
    corpus = Corpus()
    corpus.add(_entry(a=1))
    corpus.add(_entry(a=2, width=32))
    corpus.add(_entry(a=3, design="scsa1"))
    assert corpus.pairs_for("vlcsa1", 16, 4) == [(1, 0x34)]
