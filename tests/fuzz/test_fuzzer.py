"""Tests for the fuzz campaign driver (repro.fuzz.fuzzer) — determinism,
engine fan-out, the planted-mutant acceptance path, and corpus replay."""

import pytest

from repro.fuzz import Corpus, DesignPoint, FuzzConfig, run_campaign
from repro.fuzz.fuzzer import default_fault, replay_corpus


def _config(**kw):
    kw.setdefault(
        "points", (DesignPoint("vlcsa1", 16, 4), DesignPoint("kogge_stone", 16))
    )
    kw.setdefault("vectors", 32)
    kw.setdefault("max_rounds", 3)
    kw.setdefault("seed", 7)
    return FuzzConfig(**kw)


def test_clean_campaign_agrees_and_is_deterministic():
    one = run_campaign(_config())
    two = run_campaign(_config())
    assert one.ok and two.ok
    assert one.execs == two.execs > 0
    assert one.coverage_points == two.coverage_points > 0
    assert one.corpus.corpus_hash() == two.corpus.corpus_hash()
    assert one.to_dict()["corpus"]["hash"] == two.to_dict()["corpus"]["hash"]


def test_parallel_campaign_matches_serial():
    serial = run_campaign(_config())
    parallel = run_campaign(_config(workers=2))
    assert parallel.corpus.corpus_hash() == serial.corpus.corpus_hash()
    assert parallel.execs == serial.execs
    assert parallel.coverage_points == serial.coverage_points


def test_different_seed_different_corpus():
    one = run_campaign(_config())
    two = run_campaign(_config(seed=8))
    assert one.corpus.corpus_hash() != two.corpus.corpus_hash()


def test_rate_check_runs_for_speculative_points():
    campaign = run_campaign(_config(vectors=256, max_rounds=2))
    (row,) = campaign.rate_checks
    assert row["width"] == 16 and row["window"] == 4
    assert row["samples"] >= 256  # every uniform chunk contributes
    assert row["ok"]


def test_planted_mutant_is_caught_and_minimized():
    """The ISSUE acceptance path: a mutant injected via apply_fault must be
    found by the campaign and shrunk by the corpus minimizer."""
    point = DesignPoint("vlcsa1", 16, 4)
    fault = default_fault(point)
    campaign = run_campaign(
        _config(points=(point,), fault=fault, max_rounds=2)
    )
    assert not campaign.ok
    assert campaign.divergences
    shrunk = [m for m in campaign.minimized if m["minimized"]]
    assert shrunk
    for item in shrunk:
        # Minimization never grows the reproducer.
        assert int(item["a"], 16) <= int(item["original_a"], 16)
        assert int(item["b"], 16) <= int(item["original_b"], 16)
    # Divergent inputs are preserved in the corpus for replay.
    assert any(e.reason == "divergence" for e in campaign.corpus)


def test_corpus_feedback_and_replay(tmp_path):
    d = str(tmp_path / "corpus")
    campaign = run_campaign(_config(corpus_dir=d))
    assert len(campaign.corpus) > 0
    reloaded = Corpus(d)
    assert reloaded.corpus_hash() == campaign.corpus.corpus_hash()
    assert replay_corpus(reloaded) == []


def test_replay_detects_regression(tmp_path):
    d = str(tmp_path / "corpus")
    point = DesignPoint("vlcsa1", 16, 4)
    run_campaign(_config(points=(point,), corpus_dir=d))
    divergences = replay_corpus(Corpus(d), fault=default_fault(point))
    assert divergences
    assert all(div.strategy == "replay" for div in divergences)


def test_campaign_respects_max_rounds_and_stale_stop():
    campaign = run_campaign(_config(max_rounds=8))
    # Coverage saturates quickly on a tiny grid; the stale-round stop must
    # fire well before the round cap.
    assert campaign.rounds_executed < 8
    assert campaign.completed


def test_config_validation():
    with pytest.raises(ValueError, match="at least one design point"):
        FuzzConfig(points=())
    with pytest.raises(ValueError, match="vectors"):
        _config(vectors=0)
    with pytest.raises(ValueError, match="max_rounds"):
        _config(max_rounds=0)


def test_default_fault_is_deterministic_and_observable():
    point = DesignPoint("vlcsa1", 16, 4)
    assert default_fault(point) == default_fault(point)
    net, stuck_at = default_fault(point)
    assert stuck_at == 1
    from repro.fuzz.oracle import Oracle

    assert Oracle(point, fault=(net, stuck_at)).diverges(0, 0)
