"""Tests for the structural-coverage feedback (repro.fuzz.coverage)."""

import numpy as np

from repro.engine.elab import build_design
from repro.fuzz.coverage import mux_toggle_keys, window_pattern_keys, witnessed
from repro.model.behavioral import pack_ints, window_profile
from repro.netlist.compile import compile_circuit, mux_select_points


def test_window_pattern_keys_identify_boundary_combos():
    width, window = 16, 4
    # a=b=0: every boundary sees G=0, P=0, cin=0 -> combo 0.
    profile = window_profile(
        pack_ints([0], width), pack_ints([0], width), width, window, "lsb"
    )
    keys = window_pattern_keys(profile, "lsb")
    assert keys  # one key per boundary
    assert all(key[0] == "w" and key[1] == "lsb" for key in keys)
    assert all(key[3] == 0 for key in keys)
    assert set(keys.values()) == {0}  # the only sample is the witness

    # all-ones operands: every window generates -> G=1 and cin=1.
    ones = (1 << width) - 1
    profile = window_profile(
        pack_ints([ones], width), pack_ints([ones], width), width, window, "lsb"
    )
    combos = {key[3] for key in window_pattern_keys(profile, "lsb")}
    assert combos == {0b101}  # G=1, P=0, cin=1


def test_window_pattern_witness_is_first_sample():
    width, window = 16, 4
    ones = (1 << width) - 1
    a = pack_ints([0, ones, 0], width)
    b = pack_ints([0, ones, 0], width)
    profile = window_profile(a, b, width, window, "lsb")
    keys = window_pattern_keys(profile, "lsb")
    # combo 0 first appears at sample 0; combo 0b101 at sample 1.
    for key, index in keys.items():
        assert index == (0 if key[3] == 0 else 1)


def test_mux_select_points_and_toggles():
    circuit = build_design("scsa2", 16, 4)
    points = mux_select_points(circuit)
    assert points  # carry-select architectures are mux-structured
    gate_indices = {p[0] for p in points}
    assert all(circuit.gates[i].kind == "MUX2" for i in gate_indices)
    assert all(level >= 0 for _, _, level in points)

    sim = compile_circuit(circuit)
    pairs = [(0, 0), ((1 << 16) - 1, (1 << 16) - 1)]
    inputs = {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
    masks, ones, num_vectors = sim.pack_inputs(inputs)
    values = sim.eval_masks(masks, ones)
    keys = mux_toggle_keys(points, values, ones, num_vectors)
    assert keys
    observed = {key[2] for key in keys}
    assert observed == {0, 1}  # the two extreme vectors toggle selects
    assert all(0 <= index < num_vectors for index in keys.values())


def test_witnessed_orders_and_maps_to_pairs():
    keys = {("m", 3, 1): 1, ("m", 1, 0): 0}
    pairs = [(0xA, 0xB), (0xC, 0xD)]
    out = witnessed(keys, pairs)
    assert out == [(("m", 1, 0), 0xA, 0xB), (("m", 3, 1), 0xC, 0xD)]
