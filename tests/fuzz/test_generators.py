"""Tests for the adversarial operand-pair strategies (repro.fuzz.generators)."""

import numpy as np
import pytest

from repro.fuzz.generators import (
    STRATEGIES,
    STRATEGY_ORDER,
    chain_pair,
    generate_pairs,
    mutate_pairs,
)


def _rng(seed=7):
    return np.random.default_rng(seed)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategies_respect_width(strategy):
    for width in (8, 16, 64, 128):
        pairs = generate_pairs(strategy, _rng(), width, 4, 40)
        assert len(pairs) == 40
        for a, b in pairs:
            assert 0 <= a < (1 << width)
            assert 0 <= b < (1 << width)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategies_deterministic(strategy):
    one = generate_pairs(strategy, _rng(3), 32, 8, 25)
    two = generate_pairs(strategy, _rng(3), 32, 8, 25)
    assert one == two


def test_chain_pair_generates_requested_carry_chain():
    width = 32
    a, b = chain_pair(width, start=5, length=9, noise_a=0, noise_b=0)
    total = a + b
    # generate at bit 5 launches a carry that ripples through the
    # propagate run: the sum flips bits 6..13 relative to a ^ b.
    assert (total >> 5) & 1 == 0
    for bit in range(6, 14):
        assert ((a ^ b) >> bit) & 1 == 1  # propagate positions
    assert (total >> 14) & 1 == 1  # chain terminates with a carry out


def test_corpus_strategy_mutates_base_pairs():
    base = ((0x1234, 0x4321), (0xFFFF, 0x0001))
    pairs = mutate_pairs(_rng(), 16, 4, 30, base)
    assert len(pairs) == 30
    assert all(0 <= a < 1 << 16 and 0 <= b < 1 << 16 for a, b in pairs)


def test_corpus_strategy_empty_base_falls_back_to_uniform():
    pairs = generate_pairs("corpus", _rng(1), 16, 4, 10, base=())
    assert len(pairs) == 10


def test_strategy_order_covers_all_plus_corpus():
    assert set(STRATEGY_ORDER) == set(STRATEGIES) | {"corpus"}


def test_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown fuzz strategy"):
        generate_pairs("quantum", _rng(), 16, 4, 10)
