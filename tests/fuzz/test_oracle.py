"""Tests for the differential oracle (repro.fuzz.oracle)."""

import numpy as np
import pytest

from repro.fuzz.generators import generate_pairs
from repro.fuzz.oracle import DesignPoint, Oracle
from repro.netlist.faults import enumerate_faults


def _pairs(width, count=48, seed=11, strategy="uniform"):
    rng = np.random.default_rng(seed)
    return generate_pairs(strategy, rng, width, 4, count)


@pytest.mark.parametrize(
    "design,window",
    [
        ("kogge_stone", None),
        ("scsa1", 4),
        ("scsa2", 4),
        ("vlcsa1", 4),
        ("vlcsa2", 4),
    ],
)
def test_clean_designs_pass_every_check(design, window):
    oracle = Oracle(DesignPoint(design, 16, window))
    for strategy in ("uniform", "boundary", "carry-chain"):
        outcome = oracle.check_batch(_pairs(16, strategy=strategy))
        assert outcome.divergences == [], [
            d.to_dict() for d in outcome.divergences
        ]
        assert outcome.samples == 48


def test_coverage_collected_with_witnesses():
    oracle = Oracle(DesignPoint("vlcsa1", 16, 4))
    pairs = _pairs(16)
    outcome = oracle.check_batch(pairs)
    assert outcome.coverage
    kinds = {key[0] for key in outcome.coverage}
    assert kinds == {"w", "m"}  # both window patterns and mux toggles
    assert all(pair in pairs for pair in outcome.coverage.values())


def test_rate_counting_only_on_request():
    oracle = Oracle(DesignPoint("scsa1", 16, 4))
    pairs = _pairs(16, count=64)
    assert oracle.check_batch(pairs).lsb_profile_samples == 0
    counted = oracle.check_batch(pairs, count_rate=True)
    assert counted.lsb_profile_samples == 64
    assert 0 <= counted.lsb_profile_errors <= 64


def test_planted_fault_is_detected():
    point = DesignPoint("vlcsa1", 16, 4)
    clean = Oracle(point)
    net = clean.circuit.output_buses["sum"][0]
    mutant = Oracle(point, fault=(net, 1))
    outcome = mutant.check_batch(_pairs(16, strategy="boundary"))
    assert outcome.divergences
    checks = {d.check for d in outcome.divergences}
    # A stuck-at on the speculative sum trips the soundness cross-check.
    assert "err-soundness" in checks


def test_every_enumerable_fault_on_small_adder_is_caught():
    point = DesignPoint("scsa1", 8, 3)
    clean = Oracle(point)
    pairs = _pairs(8, count=64, strategy="boundary") + _pairs(
        8, count=64, strategy="carry-chain"
    )
    missed = []
    for fault in enumerate_faults(clean.circuit)[:40]:
        mutant = Oracle(point, fault=(fault.net, fault.stuck_at))
        if not mutant.check_batch(pairs).divergences:
            missed.append(fault)
    # The differential battery is a strong test set: at most a few
    # redundant-logic faults may escape on the unoptimized netlist.
    assert len(missed) <= 4, missed


def test_diverges_predicate_single_pair():
    point = DesignPoint("vlcsa2", 16, 4)
    clean = Oracle(point)
    assert clean.diverges(0x1234, 0x4321) == []
    net = clean.circuit.output_buses["sum_rec"][0]
    mutant = Oracle(point, fault=(net, 1))
    assert any(d.check == "recovery" for d in mutant.diverges(0, 0))


def test_machine_latency_cross_check_runs():
    from repro.fuzz.oracle import _MACHINE_SAMPLE

    oracle = Oracle(DesignPoint("vlcsa2", 16, 4))
    # sign-extension pairs force stalls; the machine subsample must agree.
    outcome = oracle.check_batch(_pairs(16, strategy="sign-extension"))
    assert outcome.divergences == []
    assert _MACHINE_SAMPLE > 0
