"""Tests for the greedy test-case minimizer (repro.fuzz.minimize)."""

import pytest

from repro.fuzz.minimize import minimize_pair


def test_minimizes_to_essential_bits():
    # "Diverges" whenever both operands have bit 3 set: the minimal
    # still-diverging pair is exactly (8, 8).
    def diverges(a, b):
        return bool(a & 8) and bool(b & 8)

    assert minimize_pair(diverges, 0xDEAD, 0xBEEF) == (8, 8)


def test_minimizes_to_zero_when_everything_diverges():
    assert minimize_pair(lambda a, b: True, 0xFFFF, 0x1234) == (0, 0)


def test_result_still_diverges():
    def diverges(a, b):
        return (a + b) % 7 == 3

    a, b = minimize_pair(diverges, 0x52A1, 0x0F0E)  # (a + b) % 7 == 3
    assert diverges(0x52A1, 0x0F0E)
    assert diverges(a, b)
    # 1-minimal: clearing any single remaining bit breaks divergence.
    for value, other, which in ((a, b, 0), (b, a, 1)):
        for bit in range(value.bit_length()):
            if value & (1 << bit):
                candidate = value & ~(1 << bit)
                pair = (candidate, other) if which == 0 else (other, candidate)
                assert not diverges(*pair)


def test_rejects_non_diverging_input():
    with pytest.raises(ValueError, match="non-diverging"):
        minimize_pair(lambda a, b: False, 1, 2)
