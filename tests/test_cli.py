"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_gen_writes_verilog(tmp_path, capsys):
    out = tmp_path / "adder.v"
    assert main(["gen", "vlcsa1", "24", "6", "-o", str(out)]) == 0
    text = out.read_text()
    assert "module vlcsa1_24w6" in text
    assert "endmodule" in text


def test_gen_to_stdout_parses_back(capsys):
    assert main(["gen", "kogge_stone", "16"]) == 0
    captured = capsys.readouterr().out
    from repro.rtl import from_verilog
    from repro.netlist.simulate import simulate

    circuit = from_verilog(captured)
    assert simulate(circuit, {"a": 1000, "b": 2345})["sum"] == 3345


def test_gen_optimized_is_smaller(tmp_path):
    raw = tmp_path / "raw.v"
    opt = tmp_path / "opt.v"
    main(["gen", "kogge_stone", "32", "-o", str(raw)])
    main(["gen", "kogge_stone", "32", "-o", str(opt), "--optimize"])
    assert opt.read_text().count("assign") < raw.read_text().count("assign")


def test_gen_unknown_design_fails():
    with pytest.raises(SystemExit):
        main(["gen", "quantum", "64"])


def test_gen_default_window_from_solver(tmp_path):
    out = tmp_path / "a.v"
    assert main(["gen", "scsa1", "64", "-o", str(out)]) == 0
    assert "scsa1_64w14" in out.read_text()  # Table 7.4 window


def test_tb_emits_testbench(tmp_path):
    out = tmp_path / "tb.v"
    assert main(["tb", "ripple", "8", "-o", str(out), "--vectors", "5"]) == 0
    text = out.read_text()
    assert "module ripple_8_tb;" in text
    assert text.count("!==") == 5


def test_report_table(capsys):
    assert main(["report", "32", "--designs", "kogge_stone", "scsa1"]) == 0
    out = capsys.readouterr().out
    assert "kogge_stone" in out
    assert "scsa1" in out
    assert "delay" in out


def test_report_unknown_design_fails():
    with pytest.raises(SystemExit):
        main(["report", "32", "--designs", "abacus"])


def test_sweep_table(capsys):
    assert main(["sweep", "32", "--k-min", "6", "--k-max", "10", "--k-step", "2"]) == 0
    out = capsys.readouterr().out
    assert "P_err" in out
    assert out.count("\n") >= 5


def test_errors_uniform(capsys):
    assert main(["errors", "32", "--window", "8", "--samples", "20000"]) == 0
    out = capsys.readouterr().out
    assert "Eq. 3.13" in out
    assert "VLCSA 2 stall" in out


def test_errors_gaussian_shows_vlcsa1_collapse(capsys):
    assert main(
        ["errors", "64", "--inputs", "gaussian", "--samples", "30000"]
    ) == 0
    out = capsys.readouterr().out
    # the 25%-ish VLCSA 1 rate appears in the table
    assert any(token.startswith("2") and "%" in token
               for token in out.split() if "%" in token)


def test_equiv_equivalent_designs(capsys):
    assert main(["equiv", "brent_kung", "kogge_stone", "16"]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_equiv_speculative_not_equivalent(capsys):
    assert main(["equiv", "scsa1", "kogge_stone", "16", "--window", "4"]) == 1
    out = capsys.readouterr().out
    assert "NOT EQUIVALENT" in out
    assert "counterexample" in out


def test_equiv_named_buses(capsys):
    assert main(
        ["equiv", "vlcsa1", "kogge_stone", "16", "--window", "4",
         "--bus1", "sum_rec", "--bus2", "sum"]
    ) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_chains_histogram(capsys):
    assert main(["chains", "16", "--samples", "20000"]) == 0
    out = capsys.readouterr().out
    assert "carry-chain lengths" in out
    assert "#" in out  # the bar chart rendered


def test_chains_gaussian(capsys):
    assert main(["chains", "64", "--inputs", "gaussian", "--samples", "20000"]) == 0
    assert "gaussian" in capsys.readouterr().out


def test_seq_emits_core_and_shell(tmp_path):
    out = tmp_path / "seq.v"
    assert main(["seq", "vlcsa1", "16", "4", "-o", str(out)]) == 0
    text = out.read_text()
    assert text.count("module ") == 2
    assert "vlcsa1_16w4_seq" in text
    assert "posedge clk" in text


def test_figures_command(tmp_path, capsys):
    assert main(
        ["figures", "-o", str(tmp_path), "--names", "fig3_5"]
    ) == 0
    out = capsys.readouterr().out
    assert "fig3_5.json" in out
    assert (tmp_path / "fig3_5.json").exists()


def test_lint_clean_design(capsys):
    assert main(["lint", "vlcsa1", "--widths", "16", "--no-cache"]) == 0
    captured = capsys.readouterr()
    assert "vlcsa1 n=16" in captured.out
    assert "0 error(s)" in captured.out
    # The timing pipeline deliberately leaves sharable logic duplicated
    # (sharing raises fanout), so the E001 note is expected: the gate is
    # error-severity only.
    assert "worst severity info" in captured.err


def test_lint_fails_on_unoptimized_timing(capsys):
    assert main(
        ["lint", "vlcsa1", "--widths", "32", "--no-cache", "--no-optimize"]
    ) == 1
    assert "T001" in capsys.readouterr().out


def test_lint_fail_on_never_downgrades_exit(capsys):
    assert main(
        ["lint", "vlcsa1", "--widths", "32", "--no-cache", "--no-optimize",
         "--fail-on", "never"]
    ) == 0


def test_lint_json_format(capsys):
    import json

    assert main(
        ["lint", "vlcsa2", "--widths", "16", "--no-cache", "--format", "json",
         "--fail-on", "error"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    (row,) = payload["rows"]
    assert row["architecture"] == "vlcsa2"
    assert "F003" in row["rules_run"]


def test_lint_sarif_written_to_file(tmp_path):
    import json

    out = tmp_path / "lint.sarif"
    assert main(
        ["lint", "vlcsa1", "--widths", "16", "--no-cache",
         "--format", "sarif", "-o", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"]


def test_lint_select_and_unknown_rule(capsys):
    assert main(
        ["lint", "vlcsa1", "--widths", "16", "--no-cache", "--select", "S001"]
    ) == 0
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["lint", "vlcsa1", "--widths", "16", "--no-cache",
              "--select", "S999"])


def test_lint_requires_designs():
    with pytest.raises(SystemExit, match="no designs"):
        main(["lint", "--no-cache"])


def test_lint_self_test(capsys):
    assert main(
        ["lint", "vlcsa1", "--widths", "16", "--no-cache",
         "--self-test", "--max-mutants", "8"]
    ) == 0
    assert "8/8 mutants killed (ok)" in capsys.readouterr().out


def test_gen_lint_gate_blocks_bad_netlist(tmp_path, capsys):
    out = tmp_path / "a.v"
    with pytest.raises(SystemExit):
        main(["gen", "vlcsa1", "32", "--lint", "-o", str(out)])
    assert not out.exists()
    assert "T001" in capsys.readouterr().err


def test_gen_lint_gate_passes_optimized(tmp_path):
    out = tmp_path / "a.v"
    assert main(
        ["gen", "vlcsa1", "32", "--optimize", "--lint", "-o", str(out)]
    ) == 0
    assert out.exists()


def test_tb_lint_gate(tmp_path, capsys):
    out = tmp_path / "tb.v"
    assert main(
        ["tb", "kogge_stone", "16", "--lint", "-o", str(out), "--vectors", "3"]
    ) == 0
    assert out.exists()


def test_sim_compiled_backend(capsys):
    assert main(
        ["sim", "vlcsa1", "--widths", "16", "--vectors", "32", "--repeat", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "gate-level simulation" in out
    assert "vlcsa1" in out


def test_sim_both_backends_cross_check_json(tmp_path, capsys):
    import json

    out = tmp_path / "bench.json"
    assert main(
        ["sim", "vlcsa1", "designware", "--widths", "16", "--vectors", "64",
         "--backend", "both", "--faults", "--repeat", "1",
         "--json", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    assert doc["command"] == "sim"
    assert doc["ok"] is True
    assert len(doc["rows"]) == 2
    for row in doc["rows"]:
        assert row["speedup"] > 0
        assert row["fault_speedup"] > 0
        assert 0.0 < row["fault_coverage"] <= 1.0
    assert doc["metrics"]["counters"]["samples"] > 0
    table = capsys.readouterr().out
    assert "speedup" in table


def test_sim_vectorized_backend_and_vector_grid(tmp_path):
    import json

    out = tmp_path / "bench.json"
    assert main(
        ["sim", "vlcsa1", "--widths", "16", "--vectors", "32", "128",
         "--backend", "both", "--repeat", "1", "--json", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    assert doc["vectors"] == [32, 128]
    assert len(doc["rows"]) == 2  # one row per batch size
    for row in doc["rows"]:
        assert row["vectorized_s"] > 0
        assert row["vectorized_samples_per_s"] > 0
        assert row["vectorized_speedup"] > 0
        assert row["vectorized_vs_compiled"] > 0
    # elaborations stay one per (design, width), not per batch size
    assert doc["metrics"]["counters"]["elaborations"] == 1


def test_sim_profile_levels_report(capsys):
    assert main(
        ["sim", "vlcsa1", "--widths", "16", "--vectors", "16",
         "--repeat", "1", "--profile-levels"]
    ) == 0
    out = capsys.readouterr().out
    assert "fused groups" in out
    assert "(kind: gates)" in out


def test_sim_fault_widths_restricts_fault_runs(tmp_path):
    import json

    out = tmp_path / "bench.json"
    assert main(
        ["sim", "vlcsa1", "--widths", "8", "16", "--vectors", "32",
         "--faults", "--fault-widths", "16", "--repeat", "1",
         "--json", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    by_width = {row["width"]: row for row in doc["rows"]}
    assert "fault_coverage" in by_width[16]
    assert "fault_coverage" not in by_width[8]


def test_sim_unknown_design_fails():
    with pytest.raises(SystemExit):
        main(["sim", "nosuch", "--widths", "16", "--vectors", "8"])


def test_sim_both_backends_elaborate_once_per_point(tmp_path):
    """--backend both must reuse one elaboration for both passes: the
    elaborations counter equals designs x widths, not x backends."""
    import json

    out = tmp_path / "bench.json"
    assert main(
        ["sim", "vlcsa1", "kogge_stone", "--widths", "16", "--vectors", "32",
         "--backend", "both", "--repeat", "1", "--json", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    assert doc["metrics"]["counters"]["elaborations"] == 2


# -- fuzz -------------------------------------------------------------------


_FUZZ_SMOKE = ["fuzz", "--designs", "vlcsa1", "--widths", "16",
               "--vectors", "32", "--rounds", "2", "--seed", "7"]


def test_fuzz_smoke_agrees(tmp_path, capsys):
    import json

    out = tmp_path / "fuzz.json"
    assert main(_FUZZ_SMOKE + ["--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["command"] == "fuzz"
    assert doc["ok"] is True
    assert doc["execs"] > 0
    assert doc["coverage_points"] > 0
    assert doc["corpus"]["hash"]
    assert doc["provenance"]["seed"] == 7
    assert doc["metrics"]["counters"]["fuzz_execs"] == doc["execs"]
    assert "fuzz @ seed=7" in capsys.readouterr().out


def test_fuzz_deterministic_reports(tmp_path):
    """Two equal-seed runs: identical corpus hash and report body modulo
    timings (the ISSUE acceptance criterion, on a smoke-sized grid)."""
    import json

    docs = []
    for name in ("one.json", "two.json"):
        out = tmp_path / name
        assert main(_FUZZ_SMOKE + ["--time-budget", "30", "--json", str(out)]) == 0
        docs.append(json.loads(out.read_text()))
    for doc in docs:
        doc.pop("provenance")
        doc["metrics"].pop("timers_s", None)
    assert docs[0] == docs[1]


def test_fuzz_self_test_catches_planted_mutant(capsys):
    assert main(_FUZZ_SMOKE + ["--self-test"]) == 0
    err = capsys.readouterr().err
    assert "planted stuck-at" in err
    assert "self-test ok" in err
    assert "reproducer [" in err


def test_fuzz_divergence_exits_one_with_reproducer(tmp_path, capsys):
    """A real divergence (not in self-test mode) must exit 1 and print the
    minimized reproducer; the corpus keeps it for replay."""
    import json

    corpus = tmp_path / "corpus"
    out = tmp_path / "fuzz.json"
    # Plant the fault but *report* normally by driving the API path via
    # the CLI self-test exit-code inversion: here we assert the raw
    # campaign contract instead through --json.
    assert main(
        _FUZZ_SMOKE + ["--self-test", "--corpus", str(corpus),
                       "--json", str(out)]
    ) == 0
    doc = json.loads(out.read_text())
    assert doc["ok"] is False
    assert doc["divergence_count"] > 0
    assert doc["minimized"]
    assert any(item["minimized"] for item in doc["minimized"])
    assert "reproducer [" in capsys.readouterr().err
    # The divergence landed in the persistent corpus...
    entries = list(corpus.glob("*.json"))
    assert entries
    # ...and replaying it against the *clean* design now agrees (exit 0).
    assert main(["fuzz", "--replay", str(corpus)]) == 0


def test_fuzz_replay_missing_corpus_fails(tmp_path):
    with pytest.raises(SystemExit, match="empty or unreadable"):
        main(["fuzz", "--replay", str(tmp_path / "nothing")])


def test_fuzz_unknown_design_fails(capsys):
    with pytest.raises(SystemExit, match="unknown design 'nosuch'"):
        main(["fuzz", "--designs", "nosuch", "--widths", "16"])


def test_fuzz_bad_json_destination_fails(tmp_path, capsys):
    missing = tmp_path / "no" / "such" / "dir" / "out.json"
    with pytest.raises(SystemExit) as excinfo:
        main(_FUZZ_SMOKE + ["--json", str(missing)])
    assert excinfo.value.code == 1
    assert "cannot write JSON report" in capsys.readouterr().err


# -- bench compare exit-code 2 branches -------------------------------------


def test_bench_compare_malformed_report_exits_two(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text("{not json")
    new.write_text('{"rows": []}')
    assert main(["bench", "compare", str(old), str(new)]) == 2
    assert "error: cannot read report" in capsys.readouterr().err


def test_bench_compare_missing_rows_exits_two(tmp_path, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text('{"other": 1}')
    new.write_text('{"rows": []}')
    assert main(["bench", "compare", str(old), str(new)]) == 2
    assert "not a bench report" in capsys.readouterr().err


def test_bench_compare_no_comparable_metrics_exits_two(tmp_path, capsys):
    import json

    report = {"rows": [{"architecture": "vlcsa1", "width": 16}]}
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(report))
    new.write_text(json.dumps(report))
    assert main(["bench", "compare", str(old), str(new)]) == 2
    assert "no comparable metrics" in capsys.readouterr().err


def test_version_flag_reports_package_version(capsys):
    from repro._version import package_version

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {package_version()}"


def test_serve_rejects_bad_config(capsys):
    assert main(["serve", "--shards", "0"]) == 2
    assert "error:" in capsys.readouterr().err


def test_loadgen_rejects_bad_config(capsys):
    assert main(["loadgen", "--uds", "/tmp/x.sock", "--requests", "0"]) == 2
    assert "error:" in capsys.readouterr().err


def test_equiv_mutant_refuted_with_minimized_cex(tmp_path, capsys):
    out = tmp_path / "equiv.json"
    code = main(
        ["equiv", "scsa1", "designware", "16", "--bus1", "sum",
         "--bus2", "sum", "--json", str(out)]
    )
    assert code == 1
    text = capsys.readouterr().out
    assert "NOT EQUIVALENT" in text and "counterexample" in text
    import json

    payload = json.loads(out.read_text())
    assert payload["result"]["equivalent"] is False
    assert payload["result"]["counterexample"] is not None


def test_equiv_optimized_against_raw(capsys):
    assert main(["equiv", "vlcsa2", "vlcsa2", "16", "--optimize2"]) == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_opt_proves_and_reports_reductions(tmp_path, capsys):
    out = tmp_path / "opt.json"
    code = main(
        ["opt", "carry_select", "--widths", "16", "--prove",
         "--json", str(out)]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "reduction" in text and "proved" in text
    import json

    payload = json.loads(out.read_text())
    row = payload["rows"][0]
    assert row["proved"] is True and row["rollbacks"] == 0
    assert row["gate_reduction"] >= 1.10
    assert payload["ok"] is True


def test_sta_reports_paths_and_sarif(tmp_path, capsys):
    sarif = tmp_path / "sta.sarif"
    assert main(
        ["sta", "vlcsa2", "32", "--paths", "3", "-v", "--sarif", str(sarif)]
    ) == 0
    text = capsys.readouterr().out
    assert "critical delay" in text and "slack" in text
    assert "worst path" in text
    import json

    doc = json.loads(sarif.read_text())
    assert doc["version"] == "2.1.0"


def test_sta_tight_clock_fails_with_violation(capsys):
    assert main(["sta", "ripple", "32", "--clock", "0.1"]) == 1
    assert "TIMING VIOLATION" in capsys.readouterr().err
