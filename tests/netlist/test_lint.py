"""Tests for the static-analysis framework (repro.netlist.lint)."""

import json

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.faults import Fault, apply_fault
from repro.netlist.lint import (
    SEVERITIES,
    Diagnostic,
    format_text,
    mutation_self_test,
    report_from_dict,
    report_to_dict,
    reports_to_sarif,
    resolve_rules,
    run_lint,
    severity_rank,
)
from repro.netlist.simulate import simulate


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_registry_ids_unique_and_sorted():
    rules = resolve_rules()
    ids = [r.id for r in rules]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    names = [r.name for r in rules]
    assert len(names) == len(set(names))
    assert {r.family for r in rules} == {"structural", "formal", "timing", "equiv"}
    assert all(r.severity in SEVERITIES for r in rules)


def test_resolve_rules_select_ignore_and_families():
    only = resolve_rules(select=["S004", "err-coverage"])
    assert {r.id for r in only} == {"S004", "F001"}
    dropped = resolve_rules(ignore=["F005"])
    assert "F005" not in {r.id for r in dropped}
    formal = resolve_rules(families=("formal",))
    assert formal and all(r.family == "formal" for r in formal)


def test_resolve_rules_rejects_unknown():
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_rules(select=["S999"])
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_rules(ignore=["not-a-rule"])


def test_severity_rank_orders_and_rejects():
    assert severity_rank("info") < severity_rank("warning") < severity_rank("error")
    with pytest.raises(ValueError, match="unknown severity"):
        severity_rank("fatal")


# ---------------------------------------------------------------------------
# Structural rules: edge cases
# ---------------------------------------------------------------------------


def test_empty_circuit_reports_no_outputs_only():
    report = run_lint(Circuit("empty"))
    assert [d.rule_id for d in report.diagnostics] == ["S001"]
    assert report.errors[0].severity == "error"


def test_gate_free_circuit_is_clean():
    c = Circuit("wire")
    a = c.add_input("a")
    c.set_output("y", a)
    report = run_lint(c)
    assert report.diagnostics == []
    assert report.worst_severity() is None


def test_unused_input_flagged_as_info():
    c = Circuit("t")
    a = c.add_input("a")
    c.add_input("b", )  # never read
    c.set_output("y", c.not_(a))
    report = run_lint(c)
    assert [d.rule_id for d in report.diagnostics] == ["S007"]
    assert report.diagnostics[0].severity == "info"
    assert "b" in report.diagnostics[0].nets


def test_fully_dead_cone_trips_dead_logic():
    c = Circuit("dead")
    a = c.add_input("a")
    b = c.add_input("b")
    for _ in range(10):  # a cone of gates none of which reach an output
        b = c.and2(a, b)
    c.set_output("y", c.buf(a))
    report = run_lint(c, resolve_rules(select=["S008"]))
    assert [d.rule_id for d in report.diagnostics] == ["S008"]
    assert report.diagnostics[0].severity == "warning"


def test_undriven_output_and_multi_driven_net():
    from repro.netlist.circuit import Gate

    c = Circuit("bad")
    a = c.add_input("a")
    y = c.not_(a)
    c.set_output("y", y)
    # Forge a second driver of y behind the builder API's back.
    c.gates.append(Gate(kind="INV", inputs=(a,), output=y))
    report = run_lint(c, resolve_rules(select=["S004"]))
    assert [d.rule_id for d in report.diagnostics] == ["S004"]


def test_fanout_overload_found_and_fixed_by_buffering():
    from repro.netlist.optimize import buffer_fanout

    c = Circuit("fan")
    a = c.add_input("a")
    b = c.add_input("b")
    root = c.and2(a, b)
    c.set_output_bus("y", [c.not_(root) for _ in range(20)])
    before = run_lint(c, resolve_rules(select=["S009"]))
    assert [d.rule_id for d in before.diagnostics] == ["S009"]
    buffered = buffer_fanout(c, max_fanout=8)
    after = run_lint(buffered, resolve_rules(select=["S009"]))
    assert after.diagnostics == []


# ---------------------------------------------------------------------------
# Deterministic ordering and serialization
# ---------------------------------------------------------------------------


def _messy_circuit():
    c = Circuit("messy")
    a = c.add_input("a")
    c.add_input("u1")
    c.add_input("u2")
    for _ in range(12):
        c.not_(a)  # dead inverters
    c.set_output("y", c.buf(a))
    return c


def test_diagnostics_deterministically_ordered():
    first = run_lint(_messy_circuit())
    second = run_lint(_messy_circuit())
    assert [d.to_dict() for d in first.diagnostics] == [
        d.to_dict() for d in second.diagnostics
    ]
    keys = [d.sort_key() for d in first.diagnostics]
    assert keys == sorted(keys)


def test_report_dict_round_trip():
    report = run_lint(_messy_circuit())
    payload = json.loads(json.dumps(report_to_dict(report)))
    back = report_from_dict(payload)
    assert back.circuit == report.circuit
    assert back.rules_run == report.rules_run
    assert [d.to_dict() for d in back.diagnostics] == [
        d.to_dict() for d in report.diagnostics
    ]


def test_diagnostic_round_trip_with_counterexample():
    diag = Diagnostic(
        rule_id="F001",
        rule_name="err-coverage",
        severity="error",
        circuit="c",
        message="m",
        nets=("err",),
        counterexample={"a": 3, "b": 5},
        hint="h",
    )
    assert Diagnostic.from_dict(diag.to_dict()) == diag


def test_format_text_mentions_rule_and_counts():
    report = run_lint(_messy_circuit())
    text = format_text(report, verbose=True)
    assert "messy:" in text
    assert "S007" in text and "S008" in text


def test_sarif_document_shape():
    reports = [run_lint(_messy_circuit())]
    doc = reports_to_sarif(reports)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {r.id for r in resolve_rules()} <= rule_ids
    levels = {res["level"] for res in run["results"]}
    assert levels <= {"note", "warning", "error"}
    for res in run["results"]:
        assert res["locations"][0]["logicalLocations"]


# ---------------------------------------------------------------------------
# Formal rules on the paper's designs
# ---------------------------------------------------------------------------


def test_vlcsa1_formally_clean():
    from repro.core import build_vlcsa1

    report = run_lint(build_vlcsa1(16, 4), resolve_rules(families=("formal",)))
    assert report.diagnostics == []
    assert {"F001", "F002", "F004"} <= set(report.rules_run)


def test_broken_detector_caught_with_counterexample():
    from repro.core import build_vlcsa1

    clean = build_vlcsa1(16, 4)
    err_net = clean.output_buses["err"][0]
    mutant = apply_fault(clean, Fault(err_net, 0))  # detector silenced
    report = run_lint(mutant, resolve_rules(select=["F001"]))
    assert report.errors, "silenced detector must fail err-coverage"
    cex = report.errors[0].counterexample
    assert cex is not None
    # The counterexample really is a mis-speculation the detector misses.
    out = simulate(mutant, {"a": cex["a"], "b": cex["b"]})
    assert out["err"] == 0
    assert out["sum"] != cex["a"] + cex["b"]


def test_recovery_bus_corruption_caught():
    from repro.core import build_vlcsa1

    clean = build_vlcsa1(16, 4)
    rec0 = clean.output_buses["sum_rec"][0]
    mutant = apply_fault(clean, Fault(rec0, 1))
    report = run_lint(mutant, resolve_rules(select=["F002"]))
    assert report.errors and report.errors[0].counterexample is not None


def test_vlcsa2_hypothesis_coverage_runs():
    from repro.core import build_vlcsa2

    report = run_lint(build_vlcsa2(16, 4), resolve_rules(select=["F003"]))
    assert report.diagnostics == []
    assert report.rules_run == ("F003",)


# ---------------------------------------------------------------------------
# Timing rule
# ---------------------------------------------------------------------------


def test_t001_raw_vlcsa1_32_fails_then_optimize_fixes():
    from repro.core import build_vlcsa1
    from repro.netlist.optimize import optimize

    raw = build_vlcsa1(32, 13)
    rules = resolve_rules(select=["T001"])
    assert run_lint(raw, rules).errors, "raw 32-bit detection should be late"
    opt, _ = optimize(raw)
    assert run_lint(opt, rules).diagnostics == []


# ---------------------------------------------------------------------------
# apply_fault
# ---------------------------------------------------------------------------


def test_apply_fault_forces_net_value():
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")
    y = c.and2(a, b)
    c.set_output("y", y)
    mutant = apply_fault(c, Fault(y, 1))
    assert simulate(mutant, {"a": 0, "b": 0})["y"] == 1
    # Untouched circuit still works.
    assert simulate(c, {"a": 0, "b": 0})["y"] == 0


def test_apply_fault_rejects_bad_arguments():
    from repro.netlist.circuit import NetlistError

    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("y", c.not_(a))
    with pytest.raises(NetlistError, match="stuck_at"):
        apply_fault(c, Fault(0, 2))
    with pytest.raises(NetlistError, match="does not exist"):
        apply_fault(c, Fault(99, 0))


# ---------------------------------------------------------------------------
# Mutation self-test
# ---------------------------------------------------------------------------


def test_mutation_self_test_kills_detector_faults():
    from repro.core import build_vlcsa1

    outcome = mutation_self_test(build_vlcsa1(16, 4), max_mutants=16)
    assert outcome.total == 16
    assert outcome.killed > 0
    assert outcome.missed == []
    assert outcome.ok
    payload = outcome.to_dict()
    assert payload["ok"] and payload["killed"] == outcome.killed


def test_mutation_self_test_skips_designs_without_detector():
    from repro.adders import build_kogge_stone_adder

    outcome = mutation_self_test(build_kogge_stone_adder(16))
    assert outcome.total == 0
    assert outcome.ok
