"""Tests for the switching-activity power model (repro.netlist.power)."""

import random

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.power import estimate_power


def _inv_chain(length):
    c = Circuit("chain")
    a = c.add_input("a")
    x = a
    for _ in range(length):
        x = c.not_(x)
    c.set_output("y", x)
    return c


class TestActivityCounting:
    def test_constant_input_no_toggles(self):
        c = _inv_chain(3)
        report = estimate_power(c, {"a": [1, 1, 1, 1]})
        assert report.total_toggles == 0
        assert report.dynamic_power() == 0.0

    def test_alternating_input_toggles_every_net(self):
        c = _inv_chain(3)
        report = estimate_power(c, {"a": [0, 1, 0, 1]})
        # 4 nets (input + 3 INV outputs), 3 transitions each
        assert report.total_toggles == 4 * 3
        assert report.toggles_per_vector == pytest.approx(4.0)

    def test_partial_activity(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("y", c.and2(a, b))
        # b gates a: with b=0 the AND output never toggles
        report = estimate_power(c, {"a": [0, 1, 0, 1], "b": [0, 0, 0, 0]})
        and_net = c.gates[-1].output
        assert report.toggles[and_net] == 0

    def test_needs_two_vectors(self):
        c = _inv_chain(1)
        with pytest.raises(NetlistError, match="two vectors"):
            estimate_power(c, {"a": [1]})

    def test_input_bus_mismatch_rejected(self):
        c = _inv_chain(1)
        with pytest.raises(NetlistError, match="mismatch"):
            estimate_power(c, {"b": [0, 1]})

    def test_value_out_of_range_rejected(self):
        c = _inv_chain(1)
        with pytest.raises(NetlistError, match="fit"):
            estimate_power(c, {"a": [2, 0]})


class TestDesignComparisons:
    def _random_stream(self, width, count, seed=0):
        gen = random.Random(seed)
        return {
            "a": [gen.randrange(1 << width) for _ in range(count)],
            "b": [gen.randrange(1 << width) for _ in range(count)],
        }

    def test_kogge_stone_burns_more_than_brent_kung(self):
        """More prefix nodes -> more switched capacitance."""
        from repro.adders import build_brent_kung_adder, build_kogge_stone_adder

        stream = self._random_stream(32, 200)
        p_ks = estimate_power(build_kogge_stone_adder(32), stream)
        p_bk = estimate_power(build_brent_kung_adder(32), stream)
        assert p_ks.dynamic_power() > p_bk.dynamic_power()

    def test_scsa_power_comparable_despite_dual_rows(self):
        """Extension finding the thesis doesn't report: although SCSA is
        *smaller* than Kogge-Stone, its two always-active sum hypotheses
        toggle enough that switched capacitance lands near (here slightly
        above) Kogge-Stone's — speculation trades area/delay, not power."""
        from repro.adders import build_kogge_stone_adder
        from repro.core import build_scsa_adder

        stream = self._random_stream(64, 200, seed=1)
        p_ks = estimate_power(build_kogge_stone_adder(64), stream)
        p_sc = estimate_power(build_scsa_adder(64, 14), stream)
        ratio = p_sc.dynamic_power() / p_ks.dynamic_power()
        assert 0.75 < ratio < 1.35

    def test_ripple_burns_least(self):
        from repro.adders import build_kogge_stone_adder, build_ripple_adder

        stream = self._random_stream(32, 200, seed=2)
        p_r = estimate_power(build_ripple_adder(32), stream)
        p_ks = estimate_power(build_kogge_stone_adder(32), stream)
        assert p_r.dynamic_power() < p_ks.dynamic_power()

    def test_power_scales_with_frequency_and_voltage(self):
        c = _inv_chain(2)
        report = estimate_power(c, {"a": [0, 1, 0]})
        base = report.dynamic_power(1.0, 1.0)
        assert report.dynamic_power(2.0, 1.0) == pytest.approx(2 * base)
        assert report.dynamic_power(1.0, 2.0) == pytest.approx(4 * base)
