"""Tests for structural validation (repro.netlist.validate)."""

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.validate import check_circuit, live_gate_fraction, unused_nets


def test_valid_circuit_passes():
    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("y", c.not_(a))
    check_circuit(c)  # should not raise


def test_no_outputs_rejected():
    c = Circuit("t")
    c.add_input("a")
    with pytest.raises(NetlistError, match="no outputs"):
        check_circuit(c)


def test_unused_nets_found():
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")  # never used
    c.set_output("y", c.not_(a))
    assert b in unused_nets(c)


def test_all_generated_designs_validate():
    from repro.adders import ADDER_GENERATORS
    from repro.core import build_scsa_adder, build_vlcsa1, build_vlcsa2, build_vlsa

    for gen in ADDER_GENERATORS.values():
        check_circuit(gen(24))
    check_circuit(build_scsa_adder(24, 6))
    check_circuit(build_vlcsa1(24, 6))
    check_circuit(build_vlcsa2(24, 6))
    check_circuit(build_vlsa(24, 6))


def test_live_fraction_full_after_strip():
    from repro.adders import build_kogge_stone_adder

    c = build_kogge_stone_adder(32)  # generator strips dead gates
    assert live_gate_fraction(c) == pytest.approx(1.0)


def test_live_fraction_detects_dead_logic():
    c = Circuit("t")
    a = c.add_input("a")
    c.not_(a)  # dead
    c.set_output("y", c.buf(a))
    assert live_gate_fraction(c) == pytest.approx(0.5)
