"""Tests for the area model (repro.netlist.area)."""

import pytest

from repro.cells.library import default_library
from repro.netlist.area import area, area_report, gate_counts, gate_equivalents
from repro.netlist.circuit import Circuit


def _small():
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")
    c.set_output("y", c.or2(c.and2(a, b), c.xor2(a, b)))
    return c


def test_area_is_sum_of_cell_areas():
    c = _small()
    lib = default_library()
    expected = lib.area("AND2") + lib.area("XOR2") + lib.area("OR2")
    assert area(c) == pytest.approx(expected)


def test_gate_counts():
    assert gate_counts(_small()) == {"AND2": 1, "OR2": 1, "XOR2": 1}


def test_area_report_totals_match():
    rows = area_report(_small())
    total_count, total_area = rows.pop("TOTAL")
    assert total_count == sum(c for c, _ in rows.values())
    assert total_area == pytest.approx(sum(a for _, a in rows.values()))
    assert total_area == pytest.approx(area(_small()))


def test_gate_equivalents_nand2_is_unit():
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")
    c.set_output("y", c.nand2(a, b))
    assert gate_equivalents(c) == pytest.approx(1.0)


def test_empty_logic_has_zero_area():
    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("y", a)
    assert area(c) == 0.0


def test_bigger_adder_has_bigger_area():
    from repro.adders import build_kogge_stone_adder

    assert area(build_kogge_stone_adder(64)) < area(build_kogge_stone_adder(128))


def test_kogge_stone_area_superlinear_brent_kung_linearish():
    """KS is O(n log n) nodes; BK is O(n): their ratio must grow with n."""
    from repro.adders import build_brent_kung_adder, build_kogge_stone_adder

    ratio_small = area(build_kogge_stone_adder(64)) / area(build_brent_kung_adder(64))
    ratio_large = area(build_kogge_stone_adder(512)) / area(build_brent_kung_adder(512))
    assert ratio_large > ratio_small
