"""SARIF 2.1.0 schema-shape validation for lint, equiv, and STA output.

The repository has no jsonschema dependency, so this validates the
document shape structurally: the required top-level keys, the
``tool.driver`` rule table, result well-formedness, and the logical
locations that anchor findings to circuits, ports, and nets — across
all three rule families that emit SARIF (structural/formal lint, the
E-family equivalence findings, and the T-family timing findings).
"""

import json

from repro.netlist.lint import reports_to_sarif, resolve_rules, run_lint

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL_FOR_SEVERITY = {"info": "note", "warning": "warning", "error": "error"}


def _vlsa_reports():
    """Lint reports that exercise every family, including T002 and E001.

    Optimized vlsa at 64 bits genuinely violates the timing rules (its
    detector lands after its sum — the paper's own argument against it),
    and raw vlcsa1 carries redundant logic the E-family reports.
    """
    from repro.core import build_vlcsa1, build_vlsa
    from repro.netlist.optimize import optimize

    vlsa, _ = optimize(build_vlsa(64, 14))
    return [run_lint(vlsa), run_lint(build_vlcsa1(32, 13))]


def _assert_sarif_shape(doc):
    """Structural assertions over one SARIF 2.1.0 document."""
    assert doc["version"] == "2.1.0"
    assert doc["$schema"] == _SARIF_SCHEMA_URI
    assert isinstance(doc["runs"], list) and doc["runs"]
    for run in doc["runs"]:
        driver = run["tool"]["driver"]
        assert driver["name"]
        rules = driver["rules"]
        rule_ids = [r["id"] for r in rules]
        assert rule_ids == sorted(rule_ids)
        assert len(rule_ids) == len(set(rule_ids))
        for rule in rules:
            assert rule["name"]
            assert rule["shortDescription"]["text"]
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            for location in result["locations"]:
                logicals = location["logicalLocations"]
                assert logicals, "every result must be anchored"
                kinds = {loc["kind"] for loc in logicals}
                assert kinds <= {"module", "parameter", "member"}
                assert "module" in kinds  # the circuit itself
                for loc in logicals:
                    assert loc["name"]
                    assert "::" in loc.get(
                        "fullyQualifiedName", "::"
                    ) or loc["kind"] == "module"


def test_sarif_document_is_json_serializable_and_shaped():
    reports = _vlsa_reports()
    doc = json.loads(json.dumps(reports_to_sarif(reports)))
    _assert_sarif_shape(doc)


def test_sarif_levels_match_severities():
    reports = _vlsa_reports()
    doc = reports_to_sarif(reports)
    by_id = {r.id: r for r in resolve_rules()}
    for result in doc["runs"][0]["results"]:
        rule = by_id[result["ruleId"]]
        assert result["level"] == _LEVEL_FOR_SEVERITY[rule.severity]


def test_timing_findings_carry_port_anchors():
    """T002 results anchor the failing endpoint as a parameter port."""
    doc = reports_to_sarif(_vlsa_reports())
    t002 = [
        res
        for run in doc["runs"]
        for res in run["results"]
        if res["ruleId"] == "T002"
    ]
    assert t002, "optimized vlsa@64 must trip T002"
    for result in t002:
        ports = [
            loc
            for loc in result["locations"][0]["logicalLocations"]
            if loc["kind"] == "parameter"
        ]
        assert ports, "timing findings must name the endpoint port"
        assert any(loc["name"] == "err" for loc in ports)


def test_equiv_findings_present_and_anchored():
    """E-family findings appear for redundant logic, anchored to nets."""
    doc = reports_to_sarif(_vlsa_reports())
    e_family = [
        res
        for run in doc["runs"]
        for res in run["results"]
        if res["ruleId"].startswith("E0")
    ]
    assert e_family, "raw vlcsa1@32 must carry provable redundancy"
    for result in e_family:
        assert result["level"] == "note"
        members = [
            loc
            for loc in result["locations"][0]["logicalLocations"]
            if loc["kind"] == "member"
        ]
        assert members, "equivalence findings must name the nets"


def test_empty_reports_still_valid_sarif():
    from repro.netlist.circuit import Circuit

    c = Circuit("clean")
    a = c.add_input("a")
    c.set_output("y", c.not_(a))
    doc = reports_to_sarif([run_lint(c)])
    _assert_sarif_shape(doc)
    assert doc["runs"][0]["results"] == []
