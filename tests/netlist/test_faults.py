"""Tests for stuck-at fault simulation (repro.netlist.faults)."""

import random

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.faults import Fault, enumerate_faults, fault_coverage


def _and_gate():
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")
    c.set_output("y", c.and2(a, b))
    return c


class TestEnumeration:
    def test_two_faults_per_gate(self):
        c = _and_gate()
        faults = enumerate_faults(c)
        assert len(faults) == 2
        assert {f.stuck_at for f in faults} == {0, 1}

    def test_constants_excluded(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.and2(a, c.const1()))
        nets_with_faults = {f.net for f in enumerate_faults(c)}
        const_net = c.gates[0].output  # CONST1 emitted first
        assert c.gates[0].kind == "CONST1"
        assert const_net not in nets_with_faults


class TestDetection:
    def test_exhaustive_vectors_catch_everything_on_and(self):
        c = _and_gate()
        vectors = {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]}
        report = fault_coverage(c, vectors)
        assert report.coverage == 1.0
        assert not report.undetected

    def test_insufficient_vectors_miss_faults(self):
        c = _and_gate()
        # only the (1,1) vector: stuck-at-1 on the AND output is invisible
        report = fault_coverage(c, {"a": [1], "b": [1]})
        assert report.coverage < 1.0
        assert Fault(c.gates[-1].output, 1) in report.undetected

    def test_explicit_fault_list(self):
        c = _and_gate()
        y = c.gates[-1].output
        report = fault_coverage(
            c, {"a": [1, 0], "b": [1, 1]}, faults=[Fault(y, 0)]
        )
        assert report.total == 1
        assert report.detected == 1

    def test_observation_restriction(self):
        """A fault visible on one bus may be invisible on another."""
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.and2(a, b)
        c.set_output("y", x)
        c.set_output("z", c.buf(a))
        vectors = {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]}
        full = fault_coverage(c, vectors)
        only_z = fault_coverage(c, vectors, observe=["z"])
        assert full.coverage == 1.0
        assert only_z.coverage < full.coverage

    def test_adder_random_vectors_reach_high_coverage(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(8)
        gen = random.Random(3)
        vectors = {
            "a": [gen.randrange(256) for _ in range(64)],
            "b": [gen.randrange(256) for _ in range(64)],
        }
        report = fault_coverage(c, vectors)
        assert report.coverage > 0.95

    def test_single_vector_low_coverage(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(8)
        report = fault_coverage(c, {"a": [0], "b": [0]})
        assert report.coverage < 0.6


class TestValidation:
    def test_mismatched_buses(self):
        c = _and_gate()
        with pytest.raises(NetlistError, match="mismatch"):
            fault_coverage(c, {"a": [1]})

    def test_empty_vectors(self):
        c = _and_gate()
        with pytest.raises(NetlistError, match="at least one"):
            fault_coverage(c, {"a": [], "b": []})

    def test_unknown_observe_bus(self):
        c = _and_gate()
        with pytest.raises(NetlistError, match="observe"):
            fault_coverage(c, {"a": [1], "b": [1]}, observe=["nope"])
