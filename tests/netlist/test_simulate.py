"""Tests for bit-parallel simulation (repro.netlist.simulate)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.simulate import simulate, simulate_batch


def _two_input_circuit(kind):
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")
    c.set_output("y", c.add_gate(kind, [a, b]))
    return c


TWO_INPUT_TRUTH = {
    "AND2": lambda a, b: a & b,
    "OR2": lambda a, b: a | b,
    "XOR2": lambda a, b: a ^ b,
    "NAND2": lambda a, b: 1 - (a & b),
    "NOR2": lambda a, b: 1 - (a | b),
    "XNOR2": lambda a, b: 1 - (a ^ b),
}


@pytest.mark.parametrize("kind", sorted(TWO_INPUT_TRUTH))
def test_two_input_gate_truth_tables(kind):
    c = _two_input_circuit(kind)
    fn = TWO_INPUT_TRUTH[kind]
    for a, b in itertools.product((0, 1), repeat=2):
        assert simulate(c, {"a": a, "b": b})["y"] == fn(a, b)


def test_inv_buf_const():
    c = Circuit("t")
    a = c.add_input("a")
    c.set_output("inv", c.not_(a))
    c.set_output("buf", c.buf(a))
    c.set_output("zero", c.const0())
    c.set_output("one", c.const1())
    for a_val in (0, 1):
        out = simulate(c, {"a": a_val})
        assert out["inv"] == 1 - a_val
        assert out["buf"] == a_val
        assert out["zero"] == 0
        assert out["one"] == 1


def test_mux_semantics():
    c = Circuit("t")
    sel = c.add_input("sel")
    d0 = c.add_input("d0")
    d1 = c.add_input("d1")
    c.set_output("y", c.mux2(sel, d0, d1))
    for s, x0, x1 in itertools.product((0, 1), repeat=3):
        got = simulate(c, {"sel": s, "d0": x0, "d1": x1})["y"]
        assert got == (x1 if s else x0)


@pytest.mark.parametrize(
    "kind,fn",
    [
        ("AOI21", lambda a, b, x: 1 - ((a & b) | x)),
        ("OAI21", lambda a, b, x: 1 - ((a | b) & x)),
    ],
)
def test_compound_three_input_cells(kind, fn):
    c = Circuit("t")
    ins = [c.add_input(n) for n in "abx"]
    c.set_output("y", c.add_gate(kind, ins))
    for a, b, x in itertools.product((0, 1), repeat=3):
        assert simulate(c, {"a": a, "b": b, "x": x})["y"] == fn(a, b, x)


@pytest.mark.parametrize(
    "kind,fn",
    [
        ("AOI22", lambda a, b, x, w: 1 - ((a & b) | (x & w))),
        ("OAI22", lambda a, b, x, w: 1 - ((a | b) & (x | w))),
    ],
)
def test_compound_four_input_cells(kind, fn):
    c = Circuit("t")
    ins = [c.add_input(n) for n in "abxw"]
    c.set_output("y", c.add_gate(kind, ins))
    for a, b, x, w in itertools.product((0, 1), repeat=4):
        assert simulate(c, {"a": a, "b": b, "x": x, "w": w})["y"] == fn(a, b, x, w)


class TestBatchSemantics:
    def test_batch_matches_single(self):
        c = Circuit("t")
        a = c.add_input_bus("a", 5)
        b = c.add_input_bus("b", 5)
        outs = [c.xor2(a[i], b[i]) for i in range(5)]
        c.set_output_bus("y", outs)
        xs = list(range(12))
        ys = list(range(5, 17))
        batch = simulate_batch(c, {"a": xs, "b": ys})["y"]
        for i, (x, y) in enumerate(zip(xs, ys)):
            assert batch[i] == simulate(c, {"a": x, "b": y})["y"]

    def test_empty_batch(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        assert simulate_batch(c, {"a": []})["y"] == []

    def test_missing_input_bus_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")
        c.set_output("y", c.const1())
        with pytest.raises(NetlistError, match="mismatch"):
            simulate_batch(c, {"a": [1]})

    def test_extra_input_bus_rejected(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", a)
        with pytest.raises(NetlistError, match="mismatch"):
            simulate_batch(c, {"a": [1], "b": [0]})

    def test_ragged_batches_rejected(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("y", c.and2(a, b))
        with pytest.raises(NetlistError, match="equal length"):
            simulate_batch(c, {"a": [1, 0], "b": [1]})

    def test_value_too_wide_rejected(self):
        c = Circuit("t")
        a = c.add_input_bus("a", 3)
        c.set_output_bus("y", a)
        with pytest.raises(NetlistError, match="does not fit"):
            simulate(c, {"a": 8})

    def test_negative_value_rejected(self):
        c = Circuit("t")
        a = c.add_input_bus("a", 3)
        c.set_output_bus("y", a)
        with pytest.raises(NetlistError, match="does not fit"):
            simulate(c, {"a": -1})


@settings(max_examples=60, deadline=None)
@given(
    vals=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=80)
)
def test_wide_batch_identity_bus(vals):
    """Transposing in and back out of bitmask form is lossless."""
    c = Circuit("t")
    a = c.add_input_bus("a", 8)
    c.set_output_bus("y", a)
    assert simulate_batch(c, {"a": vals})["y"] == vals
