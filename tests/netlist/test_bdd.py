"""Tests for the ROBDD engine and formal equivalence (repro.netlist.bdd)."""

import itertools

import pytest

from repro.netlist.bdd import (
    BDD,
    circuit_to_bdds,
    interleaved_order,
    prove_equivalent,
)
from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.simulate import simulate


class TestBddManager:
    def test_terminals(self):
        m = BDD()
        assert m.and_(1, 1) == 1
        assert m.and_(1, 0) == 0
        assert m.or_(0, 0) == 0
        assert m.not_(0) == 1

    def test_var_is_canonical(self):
        m = BDD()
        assert m.var(3) == m.var(3)
        assert m.var(3) != m.var(4)

    def test_reduction_eliminates_redundant_tests(self):
        m = BDD()
        x = m.var(0)
        assert m.ite(x, 1, 1) == 1  # both branches equal -> no node
        assert m.or_(x, m.not_(x)) == 1  # tautology collapses
        assert m.and_(x, m.not_(x)) == 0

    def test_boolean_identities(self):
        m = BDD()
        x, y, z = m.var(0), m.var(1), m.var(2)
        # De Morgan
        assert m.not_(m.and_(x, y)) == m.or_(m.not_(x), m.not_(y))
        # distribution
        assert m.and_(x, m.or_(y, z)) == m.or_(m.and_(x, y), m.and_(x, z))
        # xor definition
        assert m.xor(x, y) == m.or_(m.and_(x, m.not_(y)), m.and_(m.not_(x), y))
        # commutativity (canonicity makes it node equality)
        assert m.and_(x, y) == m.and_(y, x)

    def test_satisfy_one(self):
        m = BDD()
        x, y = m.var(0), m.var(1)
        f = m.and_(x, m.not_(y))
        assignment = m.satisfy_one(f)
        assert assignment == {0: 1, 1: 0}
        assert m.satisfy_one(0) is None
        assert m.satisfy_one(1) == {}

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            BDD().var(-1)


class TestCircuitToBdds:
    def test_every_gate_kind_has_semantics(self):
        """Each library cell's BDD agrees with simulation exhaustively."""
        from repro.netlist.circuit import GATE_ARITY

        for kind, arity in GATE_ARITY.items():
            if arity == 0:
                continue
            c = Circuit("t")
            ins = [c.add_input(f"i{j}") for j in range(arity)]
            c.set_output("y", c.add_gate(kind, ins))
            m = BDD()
            bdds = circuit_to_bdds(c, m)
            for combo in itertools.product((0, 1), repeat=arity):
                feed = {f"i{j}": v for j, v in enumerate(combo)}
                want = simulate(c, feed)["y"]
                # evaluate the BDD by restriction
                node = bdds["y"][0]
                order = interleaved_order(c)
                values = {order[net]: feed[c.net_name(net)]
                          for name, nets in c.input_buses.items()
                          for net in nets}
                got = _eval_bdd(m, node, values)
                assert got == want, (kind, combo)

    def test_constants(self):
        c = Circuit("t")
        c.add_input("a")
        c.set_output("zero", c.const0())
        c.set_output("one", c.const1())
        bdds = circuit_to_bdds(c, BDD())
        assert bdds["zero"] == [0]
        assert bdds["one"] == [1]


def _eval_bdd(manager, node, values):
    while node not in (0, 1):
        level, lo, hi = manager._nodes[node]
        node = hi if values.get(level, 0) else lo
    return node


class TestProveEquivalent:
    def test_all_conventional_adders_formally_equal(self):
        from repro.adders import ADDER_GENERATORS

        reference = ADDER_GENERATORS["ripple"](16)
        for name, gen in ADDER_GENERATORS.items():
            result = prove_equivalent(reference, gen(16))
            assert result.equivalent, name

    def test_optimizer_soundness_formally(self):
        from repro.adders import build_kogge_stone_adder
        from repro.netlist.optimize import optimize

        raw = build_kogge_stone_adder(24)
        opt, _ = optimize(raw)
        assert prove_equivalent(raw, opt, buses=[("sum", "sum")]).equivalent

    def test_speculative_adder_inequivalent_with_counterexample(self):
        from repro.adders import build_kogge_stone_adder
        from repro.core import build_scsa_adder

        scsa = build_scsa_adder(20, 5)
        ks = build_kogge_stone_adder(20)
        result = prove_equivalent(scsa, ks)
        assert not result.equivalent
        a = result.counterexample["a"]
        b = result.counterexample["b"]
        assert simulate(scsa, {"a": a, "b": b})["sum"] != a + b
        assert simulate(ks, {"a": a, "b": b})["sum"] == a + b

    def test_vlcsa_recovery_formally_exact(self):
        """The reliability guarantee as a theorem, not a sample."""
        from repro.adders import build_kogge_stone_adder
        from repro.core import build_vlcsa1, build_vlcsa2

        ks = build_kogge_stone_adder(24)
        for circuit in (build_vlcsa1(24, 6), build_vlcsa2(24, 6)):
            result = prove_equivalent(circuit, ks, buses=[("sum_rec", "sum")])
            assert result.equivalent, circuit.name

    def test_verilog_roundtrip_formally_lossless(self):
        from repro.core import build_vlcsa1
        from repro.rtl import from_verilog, to_verilog

        c = build_vlcsa1(16, 4)
        c2 = from_verilog(to_verilog(c))
        assert prove_equivalent(c, c2).equivalent

    def test_mismatched_interfaces_rejected(self):
        c1 = Circuit("x")
        a = c1.add_input_bus("a", 4)
        c1.set_output_bus("y", a)
        c2 = Circuit("z")
        b = c2.add_input_bus("a", 5)
        c2.set_output_bus("y", b)
        with pytest.raises(NetlistError, match="interfaces differ"):
            prove_equivalent(c1, c2)

    def test_no_shared_buses_rejected(self):
        c1 = Circuit("x")
        a = c1.add_input_bus("a", 2)
        c1.set_output_bus("p", a)
        c2 = Circuit("z")
        b = c2.add_input_bus("a", 2)
        c2.set_output_bus("q", b)
        with pytest.raises(NetlistError, match="share no output"):
            prove_equivalent(c1, c2)

    def test_mismatch_location_reported(self):
        c1 = Circuit("x")
        a = c1.add_input_bus("a", 3)
        c1.set_output_bus("y", a)
        c2 = Circuit("z")
        b = c2.add_input_bus("a", 3)
        flipped = [b[0], c2.not_(b[1]), b[2]]
        c2.set_output_bus("y", flipped)
        result = prove_equivalent(c1, c2)
        assert not result.equivalent
        assert result.mismatch == ("y", 1)


class TestScaling:
    def test_adder_output_bdds_stay_linear_under_interleaved_order(self):
        """The sum functions have linear-size BDDs under interleaving
        (intermediate prefix signals in the manager are bigger, which is
        why the count is taken from the output roots only)."""
        from repro.adders import build_kogge_stone_adder

        sizes = {}
        for width in (16, 32, 64):
            m = BDD()
            outputs = circuit_to_bdds(build_kogge_stone_adder(width), m)
            # the carry-out bit depends on all 2*width variables
            sizes[width] = m.count_nodes([outputs["sum"][-1]])
        # exactly 3 nodes per operand bit pair plus terminals
        for width, size in sizes.items():
            assert size == 3 * width + 1, sizes
        # (the union over all n+1 outputs is Theta(n^2): each bit is
        # linear in its own support; no blowup anywhere)
        m = BDD()
        outputs = circuit_to_bdds(build_kogge_stone_adder(32), m)
        assert m.count_nodes(outputs["sum"]) < 4 * 32 * 32
