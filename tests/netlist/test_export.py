"""Tests for netlist interchange (repro.netlist.export)."""

import json

import pytest

from repro.netlist.circuit import NetlistError
from repro.netlist.export import from_json, to_dot, to_json
from repro.netlist.simulate import simulate_batch

from tests.conftest import random_pairs


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: __import__("repro.adders", fromlist=["x"]).build_ripple_adder(8),
            lambda: __import__("repro.adders", fromlist=["x"]).build_kogge_stone_adder(16),
            lambda: __import__("repro.core", fromlist=["x"]).build_vlcsa1(16, 4),
            lambda: __import__("repro.core", fromlist=["x"]).build_vlcsa2(16, 4),
        ],
    )
    def test_function_preserved(self, builder):
        circuit = builder()
        restored = from_json(to_json(circuit))
        width = len(circuit.input_buses["a"])
        pairs = random_pairs(width, 50)
        feed = {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        assert simulate_batch(circuit, feed) == simulate_batch(restored, feed)

    def test_structure_preserved(self):
        from repro.core import build_vlcsa1

        circuit = build_vlcsa1(20, 5)
        restored = from_json(to_json(circuit))
        assert restored.name == circuit.name
        assert restored.num_gates == circuit.num_gates
        assert restored.count_by_kind() == circuit.count_by_kind()
        assert set(restored.output_buses) == set(circuit.output_buses)

    def test_document_shape(self):
        from repro.adders import build_ripple_adder

        doc = json.loads(to_json(build_ripple_adder(4)))
        assert doc["format"] == "repro-netlist"
        assert doc["inputs"] == {"a": 4, "b": 4}
        assert len(doc["gates"]) > 0

    def test_wrong_format_rejected(self):
        with pytest.raises(NetlistError, match="not a repro-netlist"):
            from_json('{"format": "something-else"}')

    def test_wrong_version_rejected(self):
        with pytest.raises(NetlistError, match="version"):
            from_json('{"format": "repro-netlist", "version": 99}')


class TestDot:
    def test_contains_nodes_and_edges(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(4)
        dot = to_dot(c)
        assert dot.startswith(f'digraph "{c.name}"')
        assert dot.count("->") >= c.num_gates  # at least one edge per gate
        assert "sum" in dot

    def test_monster_rejected(self):
        from repro.adders import build_kogge_stone_adder

        with pytest.raises(NetlistError, match="raise"):
            to_dot(build_kogge_stone_adder(512))

    def test_max_gates_override(self):
        from repro.adders import build_kogge_stone_adder

        c = build_kogge_stone_adder(64)
        dot = to_dot(c, max_gates=10_000)
        assert "digraph" in dot
