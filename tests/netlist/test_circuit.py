"""Tests for netlist construction (repro.netlist.circuit)."""

import pytest

from repro.netlist.circuit import Circuit, Gate, NetlistError, concat_buses


class TestNetAllocation:
    def test_new_net_indices_are_sequential(self):
        c = Circuit("t")
        assert c.new_net() == 0
        assert c.new_net() == 1
        assert c.num_nets == 2

    def test_net_name_defaults_to_index(self):
        c = Circuit("t")
        n = c.new_net()
        assert c.net_name(n) == f"n{n}"

    def test_named_net_keeps_name(self):
        c = Circuit("t")
        n = c.new_net("carry")
        assert c.net_name(n) == "carry"

    def test_fresh_net_is_undriven(self):
        c = Circuit("t")
        n = c.new_net()
        assert not c.is_driven(n)
        assert c.driver_of(n) is None


class TestPorts:
    def test_input_bus_is_lsb_first_and_driven(self):
        c = Circuit("t")
        bus = c.add_input_bus("a", 4)
        assert len(bus) == 4
        for net in bus:
            assert c.is_driven(net)
            assert c.is_input_net(net)
        assert c.net_name(bus[0]) == "a[0]"

    def test_single_bit_input_has_plain_name(self):
        c = Circuit("t")
        n = c.add_input("cin")
        assert c.net_name(n) == "cin"

    def test_duplicate_port_name_rejected(self):
        c = Circuit("t")
        c.add_input_bus("a", 2)
        with pytest.raises(NetlistError, match="already used"):
            c.add_input_bus("a", 3)

    def test_output_name_collision_with_input_rejected(self):
        c = Circuit("t")
        a = c.add_input("a")
        with pytest.raises(NetlistError, match="already used"):
            c.set_output("a", a)

    def test_zero_width_bus_rejected(self):
        c = Circuit("t")
        with pytest.raises(NetlistError, match="width"):
            c.add_input_bus("a", 0)

    def test_output_bus_roundtrip(self):
        c = Circuit("t")
        a = c.add_input_bus("a", 3)
        c.set_output_bus("y", a)
        assert c.output_bus("y") == a

    def test_unknown_output_bus_raises(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", a)
        with pytest.raises(NetlistError, match="no output bus"):
            c.output_bus("z")

    def test_unknown_input_bus_raises(self):
        c = Circuit("t")
        with pytest.raises(NetlistError, match="no input bus"):
            c.input_bus("a")


class TestGateConstruction:
    def test_gate_output_is_driven(self):
        c = Circuit("t")
        a = c.add_input("a")
        out = c.not_(a)
        assert c.is_driven(out)
        assert c.driver_of(out).kind == "INV"

    def test_use_before_drive_rejected(self):
        c = Circuit("t")
        a = c.add_input("a")
        dangling = c.new_net()
        with pytest.raises(NetlistError, match="before being driven"):
            c.and2(a, dangling)

    def test_unknown_gate_kind_rejected(self):
        with pytest.raises(NetlistError, match="unknown gate kind"):
            Gate("AND99", (0, 1), 2)

    def test_wrong_arity_rejected(self):
        with pytest.raises(NetlistError, match="expects"):
            Gate("AND2", (0,), 1)

    def test_gates_are_topologically_ordered(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.and2(a, b)
        y = c.or2(x, a)
        c.set_output("y", y)
        seen = set(net for bus in c.input_buses.values() for net in bus)
        for gate in c.gates:
            for net in gate.inputs:
                assert net in seen
            seen.add(gate.output)

    def test_constants_are_memoized(self):
        c = Circuit("t")
        assert c.const0() == c.const0()
        assert c.const1() == c.const1()
        assert c.const0() != c.const1()


class TestTrees:
    def test_tree_over_zero_nets_rejected(self):
        c = Circuit("t")
        with pytest.raises(NetlistError, match="zero nets"):
            c.and_tree([])

    def test_tree_over_one_net_is_identity(self):
        c = Circuit("t")
        a = c.add_input("a")
        assert c.and_tree([a]) == a
        assert c.or_tree([a]) == a
        assert c.xor_tree([a]) == a

    def test_tree_depth_is_logarithmic(self):
        from repro.netlist.timing import analyze_timing

        c = Circuit("t")
        bus = c.add_input_bus("x", 64)
        c.set_output("y", c.or_tree(bus))
        report = analyze_timing(c)
        # 64 leaves -> 6 combine levels (+1 possible polarity INV).
        assert report.logic_depth("y") <= 7


class TestStats:
    def test_count_by_kind(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("y", c.and2(a, c.and2(a, b)))
        assert c.count_by_kind() == {"AND2": 2}

    def test_stats_string_mentions_name_and_counts(self):
        c = Circuit("mydesign")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        s = c.stats()
        assert "mydesign" in s
        assert "INV:1" in s

    def test_fanout_counts_include_outputs(self):
        c = Circuit("t")
        a = c.add_input("a")
        y = c.not_(a)
        c.set_output("y", y)
        c.set_output("y2", y)
        fan = c.fanout_counts()
        assert fan[y] == 2  # two primary-output connections
        assert fan[a] == 1


def test_concat_buses_orders_low_bits_first():
    assert concat_buses([1, 2], [3], [4, 5]) == [1, 2, 3, 4, 5]
