"""Tests for the peephole optimizer (repro.netlist.optimize)."""

import itertools
import random

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.optimize import (
    AREA_PASSES,
    buffer_fanout,
    depth_levels,
    fold_constants,
    map_compound,
    merge_inverters,
    optimize,
    share_structure,
    strip_dead,
)
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit


def _exhaustive_equivalent(c1, c2, widths):
    """Check functional equivalence over all input combinations."""
    names = sorted(widths)
    spaces = [range(1 << widths[n]) for n in names]
    for combo in itertools.product(*spaces):
        ins = dict(zip(names, combo))
        assert simulate(c1, ins) == simulate(c2, ins), ins


class TestFoldConstants:
    def test_and_with_zero(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.and2(a, c.const0()))
        out = fold_constants(c)
        assert simulate(out, {"a": 1})["y"] == 0
        assert out.count_by_kind().get("AND2", 0) == 0

    def test_or_with_one(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.or2(c.const1(), a))
        out = fold_constants(c)
        assert simulate(out, {"a": 0})["y"] == 1

    def test_xor_with_const_becomes_inverter_or_wire(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y0", c.xor2(a, c.const0()))
        c.set_output("y1", c.xor2(a, c.const1()))
        out = strip_dead(fold_constants(c))
        for v in (0, 1):
            got = simulate(out, {"a": v})
            assert got["y0"] == v
            assert got["y1"] == 1 - v
        assert out.count_by_kind().get("XOR2", 0) == 0

    def test_mux_with_const_select(self):
        c = Circuit("t")
        d0 = c.add_input("d0")
        d1 = c.add_input("d1")
        c.set_output("y", c.mux2(c.const1(), d0, d1))
        out = fold_constants(c)
        assert out.count_by_kind().get("MUX2", 0) == 0
        for x0, x1 in itertools.product((0, 1), repeat=2):
            assert simulate(out, {"d0": x0, "d1": x1})["y"] == x1

    def test_mux_same_data_collapses(self):
        c = Circuit("t")
        s = c.add_input("s")
        d = c.add_input("d")
        c.set_output("y", c.mux2(s, d, d))
        out = fold_constants(c)
        assert out.count_by_kind().get("MUX2", 0) == 0

    def test_constant_propagation_is_transitive(self):
        c = Circuit("t")
        a = c.add_input("a")
        x = c.and2(c.const0(), a)  # 0
        y = c.or2(x, a)  # a
        c.set_output("y", y)
        out = strip_dead(fold_constants(c))
        assert out.num_gates == 0  # y aliases input a
        for v in (0, 1):
            assert simulate(out, {"a": v})["y"] == v


class TestMergeInverters:
    def test_double_inverter_removed(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(c.not_(a)))
        out = strip_dead(merge_inverters(c))
        assert out.num_gates == 0

    def test_inv_and_becomes_nand(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("y", c.not_(c.and2(a, b)))
        out = strip_dead(merge_inverters(c))
        assert out.count_by_kind() == {"NAND2": 1}
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1})

    def test_shared_gate_not_absorbed(self):
        """An AND feeding two sinks must survive inverter merging."""
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.and2(a, b)
        c.set_output("y", c.not_(x))
        c.set_output("z", x)
        out = strip_dead(merge_inverters(c))
        assert out.count_by_kind().get("AND2", 0) == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1})


class TestMapCompound:
    def test_and_or_becomes_aoi(self):
        c = Circuit("t")
        ins = [c.add_input(n) for n in "abx"]
        c.set_output("y", c.or2(c.and2(ins[0], ins[1]), ins[2]))
        out = strip_dead(map_compound(c))
        kinds = out.count_by_kind()
        assert kinds.get("AOI21") == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1, "x": 1})

    def test_double_and_or_becomes_aoi22(self):
        c = Circuit("t")
        ins = [c.add_input(n) for n in "abxw"]
        c.set_output(
            "y", c.or2(c.and2(ins[0], ins[1]), c.and2(ins[2], ins[3]))
        )
        out = strip_dead(map_compound(c))
        assert out.count_by_kind().get("AOI22") == 1
        _exhaustive_equivalent(c, out, {k: 1 for k in "abxw"})

    def test_or_and_becomes_oai(self):
        c = Circuit("t")
        ins = [c.add_input(n) for n in "abx"]
        c.set_output("y", c.and2(c.or2(ins[0], ins[1]), ins[2]))
        out = strip_dead(map_compound(c))
        assert out.count_by_kind().get("OAI21") == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1, "x": 1})


class TestStripDead:
    def test_dead_gate_removed(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.not_(a)  # dead
        c.set_output("y", c.buf(a))
        out = strip_dead(c)
        assert out.count_by_kind().get("INV", 0) == 0

    def test_live_logic_kept(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        out = strip_dead(c)
        assert out.count_by_kind() == {"INV": 1}


class TestBufferFanout:
    def test_high_fanout_net_gets_buffers(self):
        c = Circuit("t")
        a = c.add_input("a")
        x = c.not_(a)
        c.set_output_bus("y", [c.not_(x) for _ in range(30)])
        out = buffer_fanout(c, max_fanout=8)
        check_circuit(out)
        fan = out.fanout_counts()
        assert max(fan) <= 8
        assert out.count_by_kind().get("BUF", 0) >= 4
        for v in (0, 1):
            assert simulate(out, {"a": v})["y"] == simulate(c, {"a": v})["y"]

    def test_low_fanout_untouched(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        out = buffer_fanout(c, max_fanout=8)
        assert out.count_by_kind().get("BUF", 0) == 0

    def test_high_fanout_input_buffered(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output_bus("y", [c.not_(a) for _ in range(20)])
        out = buffer_fanout(c, max_fanout=4)
        assert max(out.fanout_counts()) <= 4

    def test_invalid_limit_rejected(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", a)
        with pytest.raises(ValueError, match="max_fanout"):
            buffer_fanout(c, max_fanout=1)


class TestShareStructure:
    def test_duplicate_gate_shared(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.and2(a, b)
        y = c.and2(a, b)
        c.set_output("p", c.not_(x))
        c.set_output("q", c.not_(y))
        out = strip_dead(share_structure(c))
        assert out.count_by_kind().get("AND2", 0) == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1})

    def test_commutative_operand_order_irrelevant(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("p", c.xor2(a, b))
        c.set_output("q", c.xor2(b, a))
        out = strip_dead(share_structure(c))
        assert out.count_by_kind().get("XOR2", 0) == 1

    def test_degenerate_same_operand_gates_collapse(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("and_aa", c.and2(a, a))  # a
        c.set_output("xor_aa", c.xor2(a, a))  # 0
        c.set_output("xnor_aa", c.xnor2(a, a))  # 1
        c.set_output("nand_aa", c.nand2(a, a))  # ~a
        out = strip_dead(share_structure(c))
        kinds = out.count_by_kind()
        assert kinds.get("AND2", 0) == 0
        assert kinds.get("XOR2", 0) == 0
        assert kinds.get("XNOR2", 0) == 0
        assert kinds.get("NAND2", 0) == 0
        for v in (0, 1):
            got = simulate(out, {"a": v})
            assert got["and_aa"] == v
            assert got["xor_aa"] == 0
            assert got["xnor_aa"] == 1
            assert got["nand_aa"] == 1 - v

    def test_sharing_is_transitive_through_rebuilt_fanin(self):
        """Gates over shared fan-in merge too (one pass, topological)."""
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("p", c.or2(c.and2(a, b), a))
        c.set_output("q", c.or2(c.and2(b, a), a))
        out = strip_dead(share_structure(c))
        assert out.count_by_kind() == {"AND2": 1, "OR2": 1}
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1})


class TestOptimizePipeline:
    @pytest.mark.parametrize("width", [4, 8])
    def test_adder_preserved_exhaustively(self, width):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(width)
        opt, stats = optimize(c)
        check_circuit(opt)
        assert stats.gates_before == c.num_gates
        for a in range(1 << width):
            for b in range(0, 1 << width, 3):
                assert simulate(opt, {"a": a, "b": b})["sum"] == a + b

    def test_optimize_reduces_kogge_stone(self):
        from repro.adders import build_kogge_stone_adder

        c = build_kogge_stone_adder(32)
        opt, stats = optimize(c, buffer_limit=None)
        assert opt.num_gates < c.num_gates
        assert stats.removed > 0

    def test_random_circuit_equivalence(self):
        """Optimizer preserves function on randomly-built DAGs."""
        gen = random.Random(7)
        for trial in range(12):
            c = Circuit(f"rand{trial}")
            nets = list(c.add_input_bus("x", 4))
            nets.append(c.const0())
            nets.append(c.const1())
            for _ in range(25):
                op = gen.choice(
                    ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2", "INV", "MUX2"]
                )
                arity = {"INV": 1, "MUX2": 3}.get(op, 2)
                ins = [gen.choice(nets) for _ in range(arity)]
                nets.append(c.add_gate(op, ins))
            c.set_output_bus("y", nets[-6:])
            opt, _ = optimize(c)
            check_circuit(opt)
            vals = list(range(16))
            assert (
                simulate_batch(c, {"x": vals})["y"]
                == simulate_batch(opt, {"x": vals})["y"]
            )

    def test_optimize_does_not_mutate_input(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(6)
        before = c.num_gates
        optimize(c)
        assert c.num_gates == before


# ---------------------------------------------------------------------------
# Grid-wide invariants: idempotence and simulate bit-identity
# ---------------------------------------------------------------------------

GRID_WIDTHS = (8, 16, 32, 64)


def _grid_points():
    from repro.engine.elab import grid_designs

    return [(name, width) for name in grid_designs() for width in GRID_WIDTHS]


@pytest.mark.parametrize("name,width", _grid_points())
def test_grid_optimize_idempotent_and_bit_identical(name, width):
    """AREA pipeline: optimize twice == optimize once, and simulation of
    the optimized netlist is bit-identical to the raw one on both
    backends (seeded random batch)."""
    from repro.engine.elab import build_design
    from repro.netlist.equiv import random_input_batch, structural_key

    raw = build_design(name, width)
    once, _ = optimize(raw, passes=AREA_PASSES, buffer_limit=None)
    twice, stats2 = optimize(once, passes=AREA_PASSES, buffer_limit=None)
    check_circuit(once)
    assert structural_key(once) == structural_key(twice), (name, width)
    assert stats2.removed == 0

    batch = random_input_batch(raw, 64, seed=width)
    want = simulate_batch(raw, batch, backend="reference")
    got_ref = simulate_batch(once, batch, backend="reference")
    got_jit = simulate_batch(once, batch, backend="compiled")
    for bus in raw.output_buses:
        assert got_ref[bus] == want[bus], (name, width, bus)
        assert got_jit[bus] == want[bus], (name, width, bus)


def test_depth_levels_counts_unit_logic_depth():
    c = Circuit("t")
    a = c.add_input("a")
    x = a
    for _ in range(4):
        x = c.not_(x)
    c.set_output("y", x)
    c.set_output("zero", c.const0())  # constants are depth 0
    assert depth_levels(c) == 4


# ---------------------------------------------------------------------------
# Prove mode: equivalence-gated passes with rollback
# ---------------------------------------------------------------------------


class TestProveMode:
    def test_prove_records_every_pass(self):
        from repro.adders import build_carry_select_adder

        c = build_carry_select_adder(16)
        opt, stats = optimize(
            c, passes=AREA_PASSES, buffer_limit=None, prove=True
        )
        assert stats.proved
        assert stats.rollbacks == 0
        assert len(stats.pass_records) >= len(AREA_PASSES)
        names = {r.name for r in stats.pass_records}
        assert "share_structure" in names
        for record in stats.pass_records:
            assert record.proved is True and not record.rolled_back

    def test_unproved_run_reports_not_proved(self):
        from repro.adders import build_ripple_adder

        _, stats = optimize(build_ripple_adder(8))
        assert not stats.proved
        # Records are kept even without prove=True, but carry no verdict.
        assert stats.pass_records
        assert all(r.proved is None for r in stats.pass_records)

    def test_broken_pass_rolled_back_with_counterexample(self):
        """A miscompiling pass is refuted, rolled back, and reported."""
        from repro.adders import build_ripple_adder

        def bad_pass(circuit):
            # Rewrite every AND2 as OR2: wrong whenever inputs differ.
            out = Circuit(circuit.name)
            env = {}
            for name, nets in circuit.input_buses.items():
                env.update(zip(nets, out.add_input_bus(name, len(nets))))
            for gate in circuit.gates:
                kind = "OR2" if gate.kind == "AND2" else gate.kind
                if kind == "CONST0":
                    env[gate.output] = out.const0()
                elif kind == "CONST1":
                    env[gate.output] = out.const1()
                else:
                    env[gate.output] = out.add_gate(
                        kind, [env[n] for n in gate.inputs]
                    )
            for name, nets in circuit.output_buses.items():
                out.set_output_bus(name, [env[n] for n in nets])
            return out

        c = build_ripple_adder(8)
        opt, stats = optimize(
            c,
            passes=(bad_pass,),
            max_iterations=1,
            buffer_limit=None,
            prove=True,
        )
        assert stats.rollbacks == 1
        record = stats.pass_records[0]
        assert record.rolled_back and record.proved is False
        assert record.counterexample is not None
        # The rollback left the circuit untouched...
        for a in (0, 3, 255):
            assert simulate(opt, {"a": a, "b": 1})["sum"] == a + 1
        # ...and the recorded counterexample really refutes the bad pass.
        cex = record.counterexample
        broken = bad_pass(c)
        assert simulate(broken, cex)["sum"] != simulate(c, cex)["sum"]
        # stats.proved still holds: the refuted pass was rolled back.
        assert stats.proved
