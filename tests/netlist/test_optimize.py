"""Tests for the peephole optimizer (repro.netlist.optimize)."""

import itertools
import random

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.optimize import (
    buffer_fanout,
    fold_constants,
    map_compound,
    merge_inverters,
    optimize,
    strip_dead,
)
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit


def _exhaustive_equivalent(c1, c2, widths):
    """Check functional equivalence over all input combinations."""
    names = sorted(widths)
    spaces = [range(1 << widths[n]) for n in names]
    for combo in itertools.product(*spaces):
        ins = dict(zip(names, combo))
        assert simulate(c1, ins) == simulate(c2, ins), ins


class TestFoldConstants:
    def test_and_with_zero(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.and2(a, c.const0()))
        out = fold_constants(c)
        assert simulate(out, {"a": 1})["y"] == 0
        assert out.count_by_kind().get("AND2", 0) == 0

    def test_or_with_one(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.or2(c.const1(), a))
        out = fold_constants(c)
        assert simulate(out, {"a": 0})["y"] == 1

    def test_xor_with_const_becomes_inverter_or_wire(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y0", c.xor2(a, c.const0()))
        c.set_output("y1", c.xor2(a, c.const1()))
        out = strip_dead(fold_constants(c))
        for v in (0, 1):
            got = simulate(out, {"a": v})
            assert got["y0"] == v
            assert got["y1"] == 1 - v
        assert out.count_by_kind().get("XOR2", 0) == 0

    def test_mux_with_const_select(self):
        c = Circuit("t")
        d0 = c.add_input("d0")
        d1 = c.add_input("d1")
        c.set_output("y", c.mux2(c.const1(), d0, d1))
        out = fold_constants(c)
        assert out.count_by_kind().get("MUX2", 0) == 0
        for x0, x1 in itertools.product((0, 1), repeat=2):
            assert simulate(out, {"d0": x0, "d1": x1})["y"] == x1

    def test_mux_same_data_collapses(self):
        c = Circuit("t")
        s = c.add_input("s")
        d = c.add_input("d")
        c.set_output("y", c.mux2(s, d, d))
        out = fold_constants(c)
        assert out.count_by_kind().get("MUX2", 0) == 0

    def test_constant_propagation_is_transitive(self):
        c = Circuit("t")
        a = c.add_input("a")
        x = c.and2(c.const0(), a)  # 0
        y = c.or2(x, a)  # a
        c.set_output("y", y)
        out = strip_dead(fold_constants(c))
        assert out.num_gates == 0  # y aliases input a
        for v in (0, 1):
            assert simulate(out, {"a": v})["y"] == v


class TestMergeInverters:
    def test_double_inverter_removed(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(c.not_(a)))
        out = strip_dead(merge_inverters(c))
        assert out.num_gates == 0

    def test_inv_and_becomes_nand(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("y", c.not_(c.and2(a, b)))
        out = strip_dead(merge_inverters(c))
        assert out.count_by_kind() == {"NAND2": 1}
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1})

    def test_shared_gate_not_absorbed(self):
        """An AND feeding two sinks must survive inverter merging."""
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.and2(a, b)
        c.set_output("y", c.not_(x))
        c.set_output("z", x)
        out = strip_dead(merge_inverters(c))
        assert out.count_by_kind().get("AND2", 0) == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1})


class TestMapCompound:
    def test_and_or_becomes_aoi(self):
        c = Circuit("t")
        ins = [c.add_input(n) for n in "abx"]
        c.set_output("y", c.or2(c.and2(ins[0], ins[1]), ins[2]))
        out = strip_dead(map_compound(c))
        kinds = out.count_by_kind()
        assert kinds.get("AOI21") == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1, "x": 1})

    def test_double_and_or_becomes_aoi22(self):
        c = Circuit("t")
        ins = [c.add_input(n) for n in "abxw"]
        c.set_output(
            "y", c.or2(c.and2(ins[0], ins[1]), c.and2(ins[2], ins[3]))
        )
        out = strip_dead(map_compound(c))
        assert out.count_by_kind().get("AOI22") == 1
        _exhaustive_equivalent(c, out, {k: 1 for k in "abxw"})

    def test_or_and_becomes_oai(self):
        c = Circuit("t")
        ins = [c.add_input(n) for n in "abx"]
        c.set_output("y", c.and2(c.or2(ins[0], ins[1]), ins[2]))
        out = strip_dead(map_compound(c))
        assert out.count_by_kind().get("OAI21") == 1
        _exhaustive_equivalent(c, out, {"a": 1, "b": 1, "x": 1})


class TestStripDead:
    def test_dead_gate_removed(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.not_(a)  # dead
        c.set_output("y", c.buf(a))
        out = strip_dead(c)
        assert out.count_by_kind().get("INV", 0) == 0

    def test_live_logic_kept(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        out = strip_dead(c)
        assert out.count_by_kind() == {"INV": 1}


class TestBufferFanout:
    def test_high_fanout_net_gets_buffers(self):
        c = Circuit("t")
        a = c.add_input("a")
        x = c.not_(a)
        c.set_output_bus("y", [c.not_(x) for _ in range(30)])
        out = buffer_fanout(c, max_fanout=8)
        check_circuit(out)
        fan = out.fanout_counts()
        assert max(fan) <= 8
        assert out.count_by_kind().get("BUF", 0) >= 4
        for v in (0, 1):
            assert simulate(out, {"a": v})["y"] == simulate(c, {"a": v})["y"]

    def test_low_fanout_untouched(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        out = buffer_fanout(c, max_fanout=8)
        assert out.count_by_kind().get("BUF", 0) == 0

    def test_high_fanout_input_buffered(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output_bus("y", [c.not_(a) for _ in range(20)])
        out = buffer_fanout(c, max_fanout=4)
        assert max(out.fanout_counts()) <= 4

    def test_invalid_limit_rejected(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", a)
        with pytest.raises(ValueError, match="max_fanout"):
            buffer_fanout(c, max_fanout=1)


class TestOptimizePipeline:
    @pytest.mark.parametrize("width", [4, 8])
    def test_adder_preserved_exhaustively(self, width):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(width)
        opt, stats = optimize(c)
        check_circuit(opt)
        assert stats.gates_before == c.num_gates
        for a in range(1 << width):
            for b in range(0, 1 << width, 3):
                assert simulate(opt, {"a": a, "b": b})["sum"] == a + b

    def test_optimize_reduces_kogge_stone(self):
        from repro.adders import build_kogge_stone_adder

        c = build_kogge_stone_adder(32)
        opt, stats = optimize(c, buffer_limit=None)
        assert opt.num_gates < c.num_gates
        assert stats.removed > 0

    def test_random_circuit_equivalence(self):
        """Optimizer preserves function on randomly-built DAGs."""
        gen = random.Random(7)
        for trial in range(12):
            c = Circuit(f"rand{trial}")
            nets = list(c.add_input_bus("x", 4))
            nets.append(c.const0())
            nets.append(c.const1())
            for _ in range(25):
                op = gen.choice(
                    ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2", "INV", "MUX2"]
                )
                arity = {"INV": 1, "MUX2": 3}.get(op, 2)
                ins = [gen.choice(nets) for _ in range(arity)]
                nets.append(c.add_gate(op, ins))
            c.set_output_bus("y", nets[-6:])
            opt, _ = optimize(c)
            check_circuit(opt)
            vals = list(range(16))
            assert (
                simulate_batch(c, {"x": vals})["y"]
                == simulate_batch(opt, {"x": vals})["y"]
            )

    def test_optimize_does_not_mutate_input(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(6)
        before = c.num_gates
        optimize(c)
        assert c.num_gates == before
