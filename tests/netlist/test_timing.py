"""Tests for static timing analysis (repro.netlist.timing)."""

import pytest

from repro.cells.library import Cell, CellLibrary
from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.timing import analyze_timing, critical_delay, describe_path


def _unit_library():
    """Library with delay exactly 1.0 per stage (no load term)."""
    from repro.cells.library import UMC65_LIKE

    cells = [
        Cell(c.name, c.num_inputs, c.area, 1.0, 0.0)
        for c in UMC65_LIKE
    ]
    # Constants stay free so they don't skew depth counting.
    cells = [
        Cell(c.name, c.num_inputs, c.area, 0.0 if c.name.startswith("CONST") else 1.0, 0.0)
        for c in UMC65_LIKE
    ]
    return CellLibrary("unit", cells)


class TestArrival:
    def test_inputs_arrive_at_zero(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        report = analyze_timing(c)
        assert report.arrival[a] == 0.0

    def test_chain_depth_equals_delay_in_unit_library(self):
        c = Circuit("t")
        a = c.add_input("a")
        x = a
        for _ in range(5):
            x = c.not_(x)
        c.set_output("y", x)
        report = analyze_timing(c, _unit_library())
        assert report.critical_delay == pytest.approx(5.0)
        assert report.logic_depth() == 5

    def test_max_over_inputs(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        slow = c.not_(c.not_(c.not_(a)))
        y = c.and2(slow, b)
        c.set_output("y", y)
        report = analyze_timing(c, _unit_library())
        assert report.critical_delay == pytest.approx(4.0)

    def test_input_arrival_offsets(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        c.set_output("y", c.and2(a, b))
        report = analyze_timing(c, _unit_library(), input_arrival={"b": 10.0})
        assert report.critical_delay == pytest.approx(11.0)

    def test_scalar_input_arrival(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        report = analyze_timing(c, _unit_library(), input_arrival=2.5)
        assert report.critical_delay == pytest.approx(3.5)

    def test_fanout_increases_delay_in_loaded_library(self):
        def build(n_sinks):
            c = Circuit("t")
            a = c.add_input("a")
            x = c.not_(a)
            outs = [c.not_(x) for _ in range(n_sinks)]
            c.set_output_bus("y", outs)
            return analyze_timing(c).arrival[x]

        assert build(8) > build(1)


class TestPathQueries:
    def test_bus_delay_separates_output_groups(self):
        c = Circuit("t")
        a = c.add_input("a")
        fast = c.not_(a)
        slow = c.not_(c.not_(c.not_(a)))
        c.set_output("fast", fast)
        c.set_output("slow", slow)
        report = analyze_timing(c, _unit_library())
        assert report.bus_delay("fast") == pytest.approx(1.0)
        assert report.bus_delay("slow") == pytest.approx(3.0)
        assert report.buses_delay(["fast", "slow"]) == pytest.approx(3.0)

    def test_unknown_bus_raises(self):
        c = Circuit("t")
        a = c.add_input("a")
        c.set_output("y", c.not_(a))
        report = analyze_timing(c)
        with pytest.raises(NetlistError, match="no output bus"):
            report.bus_delay("nope")

    def test_critical_path_starts_at_input(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        y = c.and2(c.not_(a), b)
        c.set_output("y", y)
        report = analyze_timing(c)
        path = report.critical_path()
        assert path[0] in (a, b)
        assert path[-1] == y

    def test_path_arrivals_monotone(self):
        from repro.adders import build_kogge_stone_adder

        c = build_kogge_stone_adder(16)
        report = analyze_timing(c)
        path = report.critical_path()
        arrivals = [report.arrival[n] for n in path]
        assert arrivals == sorted(arrivals)

    def test_describe_path_rows(self):
        c = Circuit("t")
        a = c.add_input("a")
        y = c.not_(a)
        c.set_output("y", y)
        report = analyze_timing(c)
        rows = describe_path(c, report, report.critical_path())
        assert rows[0][1] == "<input>"
        assert rows[-1][1] == "INV"


class TestSlack:
    def test_default_clock_gives_zero_worst_slack(self):
        """Acceptance criterion: at clock == critical_delay the worst
        slack is exactly zero on the raw (unoptimized) circuit."""
        from repro.adders import build_carry_select_adder

        for width in (8, 16, 32):
            report = analyze_timing(build_carry_select_adder(width))
            assert report.worst_slack() == pytest.approx(0.0, abs=1e-12)

    def test_required_times_budget_backwards(self):
        c = Circuit("t")
        a = c.add_input("a")
        x = c.not_(a)
        y = c.not_(x)
        c.set_output("y", y)
        report = analyze_timing(c, _unit_library())
        required = report.required_times(clock=5.0)
        assert required[y] == pytest.approx(5.0)
        assert required[x] == pytest.approx(4.0)  # minus one unit stage
        assert required[a] == pytest.approx(3.0)

    def test_net_slack_is_min_over_obligations(self):
        """A net feeding both a fast and a slow cone gets the slow cone's
        (tighter) slack, not the endpoint's own."""
        c = Circuit("t")
        a = c.add_input("a")
        fast = c.buf(a)
        slow = a
        for _ in range(4):
            slow = c.not_(slow)
        c.set_output("fast", fast)
        c.set_output("slow", slow)
        report = analyze_timing(c, _unit_library())
        slacks = report.slacks(clock=5.0)
        # a arrives at 0; through the slow cone it must leave by 1.0.
        assert slacks[a] == pytest.approx(1.0)
        assert report.worst_slack(clock=5.0) == pytest.approx(1.0)

    def test_negative_slack_under_tight_clock(self):
        from repro.adders import build_ripple_adder

        c = build_ripple_adder(16)
        report = analyze_timing(c)
        tight = report.critical_delay / 2
        assert report.worst_slack(clock=tight) == pytest.approx(
            tight - report.critical_delay
        )


class TestCriticalPaths:
    def test_paths_sorted_by_endpoint_slack(self):
        from repro.core import build_vlcsa1

        report = analyze_timing(build_vlcsa1(32, 13))
        paths = report.critical_paths(k=8)
        assert len(paths) == 8
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)
        # Worst endpoint is the critical path itself: slack 0 at default clock.
        assert paths[0].slack == pytest.approx(0.0, abs=1e-12)
        assert paths[0].arrival == pytest.approx(report.critical_delay)

    def test_path_carries_named_bus_anchors(self):
        from repro.core import build_vlcsa2

        c = build_vlcsa2(32, 13)
        report = analyze_timing(c)
        for path in report.critical_paths(k=5):
            # Endpoint anchors use port syntax: the bus name, or bus[i].
            assert path.endpoint.split("[")[0] in c.output_buses
            assert path.bus in c.output_buses
            assert 0 <= path.bit < len(c.output_bus(path.bus))
            assert report.port_of(c.output_bus(path.bus)[path.bit]) == (
                path.endpoint
            )
            assert path.nets  # full net trace retained
            assert path.startpoint

    def test_port_of_resolves_both_directions(self):
        c = Circuit("t")
        bus = c.add_input_bus("a", 2)
        y = c.not_(bus[0])
        c.set_output("y", y)
        report = analyze_timing(c)
        assert report.port_of(bus[1]) == "a[1]"
        assert report.port_of(y) == "y"
        assert report.port_of(9999) is None

    def test_describe_path_includes_port_column(self):
        from repro.core import build_vlcsa1

        c = build_vlcsa1(16, 4)
        from repro.netlist.timing import describe_path

        report = analyze_timing(c)
        rows = describe_path(c, report, report.critical_path())
        assert all(len(row) == 4 for row in rows)
        first, last = rows[0], rows[-1]
        assert first[1] == "<input>" and first[3]  # named startpoint port
        assert last[3]  # endpoint is an output port


def test_critical_delay_convenience_matches_report():
    from repro.adders import build_ripple_adder

    c = build_ripple_adder(8)
    assert critical_delay(c) == pytest.approx(analyze_timing(c).critical_delay)


def test_adder_width_scaling_is_logarithmic_for_prefix():
    """O(log n) critical path: delay(512) - delay(256) ~ one level."""
    from repro.adders import build_kogge_stone_adder

    d256 = critical_delay(build_kogge_stone_adder(256))
    d512 = critical_delay(build_kogge_stone_adder(512))
    d64 = critical_delay(build_kogge_stone_adder(64))
    assert d512 > d256
    # One extra prefix level (256->512), versus two (64->256): sub-linear.
    assert (d512 - d256) < (d256 - d64)
