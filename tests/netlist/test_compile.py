"""Differential tests for the compiled simulation backend.

The reference interpreter (:func:`simulate_batch_reference`) is the
specification; the compiled backend must be bit-identical to it on
randomized circuits covering every gate kind, on every design of the
adder grid, and on edge batch sizes around the 64-vector limb boundary.
Fault simulation is checked the same way: the concurrent bit-plane
implementation against one interpreted resimulation per fault.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import ElaborationCache
from repro.engine.elab import LINTABLE_DESIGNS, build_design
from repro.netlist.circuit import GATE_ARITY, Circuit, NetlistError
from repro.netlist.compile import (
    CompiledSim,
    circuit_fingerprint,
    compile_circuit,
    levelize,
)
from repro.netlist.faults import fault_coverage, fault_coverage_reference
from repro.netlist.simulate import simulate_batch, simulate_batch_reference

ALL_KINDS = sorted(GATE_ARITY)


@st.composite
def circuits(draw, max_gates=40):
    """A random combinational circuit using every available gate kind."""
    c = Circuit("rand")
    nets = []
    for i in range(draw(st.integers(1, 3))):
        width = draw(st.integers(1, 8))
        nets.extend(c.add_input_bus(f"in{i}", width))
    for _ in range(draw(st.integers(1, max_gates))):
        kind = draw(st.sampled_from(ALL_KINDS))
        picks = st.integers(0, len(nets) - 1)
        ins = [nets[draw(picks)] for _ in range(GATE_ARITY[kind])]
        nets.append(c.add_gate(kind, ins))
    for i in range(draw(st.integers(1, 2))):
        width = draw(st.integers(1, 6))
        picks = st.integers(0, len(nets) - 1)
        c.set_output_bus(f"out{i}", [nets[draw(picks)] for _ in range(width)])
    return c


def _random_batch(circuit, num_vectors, rng):
    return {
        name: [rng.getrandbits(len(nets)) for _ in range(num_vectors)]
        for name, nets in circuit.input_buses.items()
    }


@settings(max_examples=80, deadline=None)
@given(circuit=circuits(), num_vectors=st.integers(0, 70), seed=st.integers(0, 2**32))
def test_compiled_matches_reference_on_random_circuits(circuit, num_vectors, seed):
    """Property: compiled output == interpreted output, any circuit/batch."""
    batch = _random_batch(circuit, num_vectors, random.Random(seed))
    assert simulate_batch(circuit, batch, backend="compiled") == \
        simulate_batch_reference(circuit, batch)


@pytest.mark.parametrize("num_vectors", [0, 1, 63, 64, 65])
def test_batch_size_edges(num_vectors):
    """Edge batch sizes around the 64-vector uint64 limb boundary."""
    circuit = build_design("vlcsa1", 16, 4)
    batch = _random_batch(circuit, num_vectors, random.Random(7))
    assert simulate_batch(circuit, batch) == \
        simulate_batch_reference(circuit, batch)


@pytest.mark.parametrize("design", sorted(LINTABLE_DESIGNS) + ["vlsa"])
@pytest.mark.parametrize("width", [16, 32, 64])
def test_adder_grid_bit_identity(design, width):
    """Acceptance: compiled backend bit-identical on the full adder grid."""
    circuit = build_design(design, width, None)
    batch = _random_batch(circuit, 64, random.Random(width * 1000 + 1))
    assert simulate_batch(circuit, batch) == \
        simulate_batch_reference(circuit, batch)


@settings(max_examples=25, deadline=None)
@given(circuit=circuits(max_gates=15), num_vectors=st.integers(1, 70),
       seed=st.integers(0, 2**32))
def test_fault_coverage_matches_reference_on_random_circuits(
    circuit, num_vectors, seed
):
    """Concurrent bit-plane fault sim == one interpreted pass per fault."""
    batch = _random_batch(circuit, num_vectors, random.Random(seed))
    fast = fault_coverage(circuit, batch)
    slow = fault_coverage_reference(circuit, batch)
    assert (fast.total, fast.detected) == (slow.total, slow.detected)
    assert fast.undetected == slow.undetected


@pytest.mark.parametrize("observe", [None, ["sum"], ["err"], ["sum_rec"]])
def test_fault_coverage_matches_reference_on_adder(observe):
    """Fault equivalence on a real design, per observation point."""
    circuit = build_design("vlcsa1", 16, 4)
    batch = _random_batch(circuit, 48, random.Random(3))
    fast = fault_coverage(circuit, batch, observe=observe)
    slow = fault_coverage_reference(circuit, batch, observe=observe)
    assert (fast.total, fast.detected) == (slow.total, slow.detected)
    assert fast.undetected == slow.undetected


def test_fault_coverage_chunked_vector_dropping():
    """Vector sets spanning several detection chunks stay bit-identical
    (faults detected early are dropped before the later, larger chunks)."""
    circuit = build_design("vlcsa1", 16, 4)
    batch = _random_batch(circuit, 300, random.Random(11))
    fast = fault_coverage(circuit, batch)
    slow = fault_coverage_reference(circuit, batch)
    assert (fast.total, fast.detected) == (slow.total, slow.detected)
    assert fast.undetected == slow.undetected


def test_levelize_orders_gates_after_their_inputs():
    circuit = build_design("vlcsa2", 24, 6)
    gate_level, net_level, readers = levelize(circuit)
    for index, gate in enumerate(circuit.gates):
        for net in gate.inputs:
            assert net_level[net] < net_level[gate.output]
            assert index in readers[net]
        assert gate_level[index] == net_level[gate.output]


def test_instance_memo_reuses_compilation():
    circuit = build_design("scsa1", 16, 4)
    assert compile_circuit(circuit) is compile_circuit(circuit)


def test_identical_circuits_share_one_kernel():
    """Rebuilt-but-identical designs hit the content-hash cache."""
    cache = ElaborationCache(capacity=8)
    c1 = build_design("vlcsa1", 16, 4)
    c2 = build_design("vlcsa1", 16, 4)
    assert circuit_fingerprint(c1) == circuit_fingerprint(c2)
    s1 = compile_circuit(c1, cache=cache)
    s2 = compile_circuit(c2, cache=cache)
    assert s1 is not s2
    assert s1.kernel is s2.kernel


def test_mutated_circuit_recompiles():
    """Appending structure invalidates the instance memo and the key."""
    circuit = build_design("designware", 16, None)
    before = compile_circuit(circuit)
    key = circuit_fingerprint(circuit)
    a0 = circuit.input_buses["a"][0]
    circuit.set_output("extra", circuit.not_(a0))
    assert circuit_fingerprint(circuit) != key
    after = compile_circuit(circuit)
    assert after is not before
    assert isinstance(after, CompiledSim)
    out = simulate_batch(circuit, _random_batch(circuit, 20, random.Random(1)))
    assert out == simulate_batch_reference(
        circuit, _random_batch(circuit, 20, random.Random(1))
    )
    assert "extra" in out


def test_unknown_backend_rejected():
    circuit = build_design("designware", 8, None)
    with pytest.raises(NetlistError, match="backend"):
        simulate_batch(circuit, _random_batch(circuit, 2, random.Random(0)),
                       backend="verilator")


def test_compiled_input_validation_matches_reference():
    """The compiled path keeps the interpreter's error contract."""
    circuit = build_design("designware", 8, None)
    with pytest.raises(NetlistError, match="mismatch"):
        simulate_batch(circuit, {"a": [1]})
    with pytest.raises(NetlistError, match="equal length"):
        simulate_batch(circuit, {"a": [1, 2], "b": [3]})
    with pytest.raises(NetlistError, match="does not fit"):
        simulate_batch(circuit, {"a": [1 << 8], "b": [0]})
    with pytest.raises(NetlistError, match="does not fit"):
        simulate_batch(circuit, {"a": [-1] * 20, "b": [0] * 20})
