"""Differential and property tests for the vectorized limb backend.

Three cross-checked layers:

* **three-way bit identity** — reference == compiled == vectorized over
  the full architecture grid and over the limb-boundary batch sizes
  (0/1/63/64/65/4096), per the PR acceptance grid;
* **transpose-seam properties** — the pack/unpack limb transposes at
  their seams: bus width 65 (the ``n+1`` sum bus), batch sizes around
  ``_NUMPY_MIN_BATCH`` (15/16), ``_BLOCK``±1, and empty batches, on both
  the Python-int and limb-array paths;
* **C fast path** — the optional :mod:`repro.netlist._accel` library is
  cross-checked against the pure-numpy SWAR rounds whenever it loads,
  and ``REPRO_ACCEL=0`` must disable it.
"""

import os
import random
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.elab import build_design, grid_designs
from repro.netlist import _accel
from repro.netlist.circuit import Circuit
from repro.netlist.compile import (
    _BLOCK,
    _NUMPY_MIN_BATCH,
    _transpose64_blocks_numpy,
    compile_circuit,
    limb_count,
    limb_ones,
    pack_values,
    pack_values_limbs,
    unpack_values,
    unpack_values_limbs,
)
from repro.netlist.simulate import (
    resolve_backend,
    simulate_batch,
    simulate_batch_reference,
)

_U64 = np.uint64


def _random_batch(circuit, num_vectors, rng):
    return {
        name: [rng.getrandbits(len(nets)) for _ in range(num_vectors)]
        for name, nets in circuit.input_buses.items()
    }


def _circuit_of(design, width):
    built = build_design(design, width)
    return getattr(built, "circuit", built)


# ---------------------------------------------------------------------------
# Three-way bit identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design", grid_designs())
@pytest.mark.parametrize("width", [8, 16, 32, 64])
def test_three_way_identity_full_grid(design, width):
    """reference == compiled == vectorized on every architecture/width."""
    circuit = _circuit_of(design, width)
    rng = random.Random(width * 1000003 + hash(design) % 1000)
    inputs = _random_batch(circuit, 65, rng)
    reference = simulate_batch_reference(circuit, inputs)
    compiled = simulate_batch(circuit, inputs, backend="compiled")
    vectorized = simulate_batch(circuit, inputs, backend="vectorized")
    assert compiled == reference
    assert vectorized == reference


@pytest.mark.parametrize("num_vectors", [0, 1, 63, 64, 65, 300, 4096])
def test_three_way_identity_batch_edges(num_vectors):
    """Limb-boundary batch sizes, three ways, on a speculative design."""
    circuit = _circuit_of("vlcsa1", 16)
    rng = random.Random(num_vectors)
    inputs = _random_batch(circuit, num_vectors, rng)
    compiled = simulate_batch(circuit, inputs, backend="compiled")
    vectorized = simulate_batch(circuit, inputs, backend="vectorized")
    assert vectorized == compiled
    if num_vectors <= 300:  # the interpreter is the slow leg
        assert simulate_batch_reference(circuit, inputs) == compiled


def test_three_way_identity_large_batch_wide_design():
    """The benchmark point itself: designware n=64 at 4096 vectors."""
    circuit = _circuit_of("designware", 64)
    inputs = _random_batch(circuit, 4096, random.Random(3))
    compiled = simulate_batch(circuit, inputs, backend="compiled")
    vectorized = simulate_batch(circuit, inputs, backend="vectorized")
    assert vectorized == compiled


def test_vectorized_does_not_mutate_inputs():
    circuit = _circuit_of("vlcsa1", 16)
    inputs = _random_batch(circuit, 130, random.Random(5))
    snapshot = {name: list(vals) for name, vals in inputs.items()}
    simulate_batch(circuit, inputs, backend="vectorized")
    assert inputs == snapshot


def test_auto_routes_by_batch_size():
    assert resolve_backend("auto", 1) == "compiled"
    assert resolve_backend("auto", 1 << 20) == "vectorized"
    assert resolve_backend("vectorized", 1) == "vectorized"
    assert resolve_backend("compiled", 1 << 20) == "compiled"


# ---------------------------------------------------------------------------
# Transpose seams (property tests)
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    width=st.sampled_from([1, 63, 64, 65]),
    num_vectors=st.sampled_from([0, 1, 15, 16, 63, 64, 65, 130]),
    seed=st.integers(0, 2**32),
)
def test_limb_pack_unpack_roundtrip(width, num_vectors, seed):
    """pack_values_limbs o unpack_values_limbs is the identity.

    Width 65 exercises the multi-plane (n+1 sum bus) path; 15/16 sit on
    the ``_NUMPY_MIN_BATCH`` fast-path boundary.
    """
    rng = random.Random(seed)
    values = [rng.getrandbits(width) for _ in range(num_vectors)]
    rows = pack_values_limbs(values, width, "bus")
    assert rows.shape == (width, limb_count(num_vectors))
    assert unpack_values_limbs(rows, num_vectors) == values


@settings(max_examples=40, deadline=None)
@given(
    width=st.sampled_from([1, 63, 64, 65]),
    num_vectors=st.sampled_from([1, 15, 16, 65]),
    seed=st.integers(0, 2**32),
)
def test_limb_and_int_paths_agree(width, num_vectors, seed):
    """The limb rows hold exactly the big-int masks, limb for limb."""
    rng = random.Random(seed)
    values = [rng.getrandbits(width) for _ in range(num_vectors)]
    rows = pack_values_limbs(values, width, "bus")
    masks = pack_values(values, width, "bus")
    limbs = limb_count(num_vectors)
    for bit in range(width):
        packed = sum(int(rows[bit][k]) << (64 * k) for k in range(limbs))
        assert packed == masks[bit]
    assert unpack_values(masks, num_vectors) == values


@pytest.mark.parametrize("num_vectors", [_BLOCK - 1, _BLOCK, _BLOCK + 1])
def test_block_boundary_roundtrip(num_vectors):
    """The int path's chunking block boundary, on both layouts."""
    rng = random.Random(num_vectors)
    values = [rng.getrandbits(65) for _ in range(num_vectors)]
    rows = pack_values_limbs(values, 65, "bus")
    assert unpack_values_limbs(rows, num_vectors) == values
    masks = pack_values(values, 65, "bus")
    assert unpack_values(masks, num_vectors) == values


def test_empty_batch_both_paths():
    assert pack_values_limbs([], 65, "bus").shape == (65, 0)
    assert unpack_values_limbs(np.empty((65, 0), dtype=_U64), 0) == []
    assert pack_values([], 65, "bus") == [0] * 65
    assert unpack_values([0] * 65, 0) == []


def test_limb_pack_range_check_matches_int_path():
    for values in ([3, 7, 9], [2**65]):
        with pytest.raises(Exception) as limb_err:
            pack_values_limbs(values, 1 if values[0] == 3 else 65, "bus")
        with pytest.raises(Exception) as int_err:
            pack_values(values, 1 if values[0] == 3 else 65, "bus")
        assert type(limb_err.value) is type(int_err.value)


def test_wide_bus_fast_path_range_check():
    """Oversized values on the >64-bit numpy fast path raise the same
    NetlistError as the scalar path (value and bus name included)."""
    from repro.netlist.circuit import NetlistError

    good = [1 << 64] * 40
    assert unpack_values_limbs(pack_values_limbs(good, 65, "wide"), 40) == good
    bad = list(good)
    bad[17] = 1 << 65
    with pytest.raises(NetlistError, match="wide"):
        pack_values_limbs(bad, 65, "wide")


# ---------------------------------------------------------------------------
# The vector plan
# ---------------------------------------------------------------------------


def test_plan_perm_and_undriven_invariants():
    circuit = _circuit_of("vlcsa1", 16)
    plan = compile_circuit(circuit).vector_plan()
    perm = plan.perm
    assert sorted(perm.tolist()) == list(range(circuit.num_nets))
    driven = {gate.output for gate in circuit.gates}
    for net in range(circuit.num_nets):
        if net in driven:
            assert perm[net] >= plan.num_undriven
        else:
            assert perm[net] < plan.num_undriven
    # Every driven row is written by exactly one group.
    written = []
    for group in plan.groups:
        out = group.out_idx.tolist()
        written.extend(out)
    assert sorted(written) == list(
        range(plan.num_undriven, circuit.num_nets)
    )


def test_groups_fuse_by_level_and_kind():
    circuit = _circuit_of("designware", 32)
    plan = compile_circuit(circuit).vector_plan()
    seen = set()
    for group in plan.groups:
        key = (group.level, group.kind)
        assert key not in seen  # one group per (level, kind)
        seen.add(key)
        for g in group.gates.tolist():
            gate = circuit.gates[g]
            assert gate.kind == group.kind
    assert len(seen) < circuit.num_gates  # fusion actually happened


def test_scratch_buffer_reused_across_batches():
    circuit = _circuit_of("vlcsa1", 16)
    sim = compile_circuit(circuit)
    rng = random.Random(1)
    a = _random_batch(circuit, 200, rng)
    b = _random_batch(circuit, 200, rng)
    V1, ones1, _ = sim.pack_inputs_limbs(a)
    first = V1.__array_interface__["data"][0]
    out_a = sim.run_batch(a, backend="vectorized")
    V2, ones2, _ = sim.pack_inputs_limbs(b)
    assert V2.__array_interface__["data"][0] == first  # same buffer
    out_b = sim.run_batch(b, backend="vectorized")
    assert out_a == simulate_batch_reference(circuit, a)
    assert out_b == simulate_batch_reference(circuit, b)


# ---------------------------------------------------------------------------
# The C fast path
# ---------------------------------------------------------------------------


def test_accel_matches_numpy_transpose_when_available():
    lib = _accel.load()
    if lib is None:
        pytest.skip("no C compiler / accel disabled")
    rng = np.random.default_rng(9)
    for rows, cols in [(64, 1), (64, 7), (128, 16), (192, 3)]:
        x = rng.integers(0, 1 << 63, size=(rows, cols), dtype=np.uint64)
        expect = _transpose64_blocks_numpy(x.copy())
        got = x.copy()
        lib.bit_transpose_blocks(got)
        assert np.array_equal(got, expect)


def test_accel_pack_unpack_roundtrip_when_available():
    lib = _accel.load()
    if lib is None:
        pytest.skip("no C compiler / accel disabled")
    rng = np.random.default_rng(10)
    for nv in (1, 63, 64, 65, 200):
        arr = rng.integers(0, 1 << 63, size=nv, dtype=np.uint64)
        rows = np.empty((64, limb_count(nv)), dtype=np.uint64)
        lib.pack_planes(arr, nv, rows)
        # tail planes of the last limb must be zero-filled
        tail = ~limb_ones(nv)
        assert not np.any(rows & tail)
        out = np.zeros(nv, dtype=np.uint64)
        lib.unpack_planes(rows, out, nv)
        assert np.array_equal(out, arr)


def test_accel_env_gate_disables_fast_path():
    """REPRO_ACCEL=0 must force load() to None in a fresh process."""
    code = (
        "from repro.netlist import _accel; "
        "import sys; sys.exit(0 if _accel.load() is None else 1)"
    )
    env = dict(os.environ, REPRO_ACCEL="0")
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True
    )
    assert proc.returncode == 0, proc.stderr.decode()


def test_vectorized_identity_without_accel():
    """The pure-numpy fallback is bit-identical too (fresh process with
    the accel gated off runs a compiled-vs-vectorized cross-check)."""
    code = """
import random
from repro.engine.elab import build_design
from repro.netlist.simulate import simulate_batch
built = build_design("vlcsa1", 16)
c = getattr(built, "circuit", built)
rng = random.Random(2)
inputs = {n: [rng.getrandbits(len(b)) for _ in range(130)]
          for n, b in c.input_buses.items()}
a = simulate_batch(c, inputs, backend="compiled")
b = simulate_batch(c, inputs, backend="vectorized")
assert a == b
from repro.netlist import _accel
assert _accel.load() is None
"""
    env = dict(os.environ, REPRO_ACCEL="0")
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True
    )
    assert proc.returncode == 0, proc.stderr.decode()


# ---------------------------------------------------------------------------
# Downstream consumers
# ---------------------------------------------------------------------------


def test_fault_coverage_backend_parity():
    from repro.netlist.faults import fault_coverage

    circuit = _circuit_of("vlcsa1", 16)
    inputs = _random_batch(circuit, 300, random.Random(8))
    by_backend = {
        backend: fault_coverage(circuit, inputs, backend=backend)
        for backend in ("compiled", "vectorized")
    }
    compiled, vectorized = by_backend["compiled"], by_backend["vectorized"]
    assert compiled.total == vectorized.total
    assert compiled.detected == vectorized.detected
    assert compiled.undetected == vectorized.undetected


def test_power_backend_parity():
    from repro.netlist.power import estimate_power

    circuit = _circuit_of("vlcsa2", 16)
    inputs = _random_batch(circuit, 200, random.Random(9))
    a = estimate_power(circuit, inputs, backend="compiled")
    b = estimate_power(circuit, inputs, backend="vectorized")
    assert a.toggles == b.toggles
    assert a.switched_capacitance == b.switched_capacitance


def test_machine_backend_parity():
    from repro.model.machine import VariableLatencyMachine

    circuit = _circuit_of("vlcsa1", 16)
    rng = random.Random(10)
    pairs = [(rng.getrandbits(16), rng.getrandbits(16)) for _ in range(120)]
    a = VariableLatencyMachine(circuit, backend="compiled").run(pairs)
    b = VariableLatencyMachine(circuit, backend="vectorized").run(pairs)
    assert a.results == b.results
    assert a.cycles == b.cycles


def test_simulate_design_digest_identity():
    from repro.engine.elab import simulate_design

    digests = {
        backend: simulate_design(
            "vlcsa1", 16, vectors=150, seed=4, backend=backend
        )["digest"]
        for backend in ("compiled", "vectorized", "reference")
    }
    assert len(set(digests.values())) == 1
