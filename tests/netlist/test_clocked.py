"""Tests for the clocked-simulation layer (repro.netlist.clocked)."""

import pytest

from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.clocked import ClockedDesign, RegisterSpec


def _counter(width=4):
    """A free-running counter: q <- q + 1 each cycle."""
    c = Circuit("counter")
    q = c.add_input_bus("q", width)
    carry = c.const1()  # +1
    bits = []
    for i in range(width):
        bits.append(c.xor2(q[i], carry))
        carry = c.and2(q[i], carry)
    c.set_output_bus("d", bits)
    c.set_output_bus("count", q)
    return ClockedDesign(c, [RegisterSpec("q", "d")])


def _accumulator(width=8):
    """acc <- acc + x when en, else hold."""
    from repro.adders.ripple import ripple_chain

    c = Circuit("acc")
    x = c.add_input_bus("x", width)
    en = c.add_input("en")
    acc = c.add_input_bus("acc_q", width)
    sums, _ = ripple_chain(c, acc, x, c.const0())
    nxt = [c.mux2(en, acc[i], sums[i]) for i in range(width)]
    c.set_output_bus("acc_d", nxt)
    c.set_output_bus("value", acc)
    return ClockedDesign(c, [RegisterSpec("acc_q", "acc_d")])


class TestCounter:
    def test_counts_up(self):
        design = _counter()
        seen = [design.step()["count"] for _ in range(6)]
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_wraps(self):
        design = _counter(width=2)
        seen = [design.step()["count"] for _ in range(6)]
        assert seen == [0, 1, 2, 3, 0, 1]

    def test_reset_restarts(self):
        design = _counter()
        for _ in range(3):
            design.step()
        design.reset()
        assert design.step()["count"] == 0

    def test_custom_reset_value(self):
        c = Circuit("hold")
        q = c.add_input_bus("q", 4)
        c.set_output_bus("d", q)
        c.set_output_bus("now", q)
        design = ClockedDesign(c, [RegisterSpec("q", "d", reset_value=9)])
        assert design.step()["now"] == 9
        assert design.step()["now"] == 9  # holds


class TestAccumulator:
    def test_accumulates_with_enable(self):
        design = _accumulator()
        design.step({"x": 5, "en": 1})
        design.step({"x": 7, "en": 1})
        design.step({"x": 100, "en": 0})  # held
        out = design.step({"x": 0, "en": 0})
        assert out["value"] == 12

    def test_run_stream(self):
        design = _accumulator()
        outs = design.run([{"x": v, "en": 1} for v in (1, 2, 3, 4)])
        assert [o["value"] for o in outs] == [0, 1, 3, 6]


class TestValidation:
    def test_unknown_q_bus(self):
        c = Circuit("t")
        a = c.add_input_bus("a", 2)
        c.set_output_bus("d", a)
        with pytest.raises(NetlistError, match="not an input bus"):
            ClockedDesign(c, [RegisterSpec("q", "d")])

    def test_unknown_d_bus(self):
        c = Circuit("t")
        q = c.add_input_bus("q", 2)
        c.set_output_bus("out", q)
        with pytest.raises(NetlistError, match="not an output bus"):
            ClockedDesign(c, [RegisterSpec("q", "d")])

    def test_narrow_d_bus(self):
        c = Circuit("t")
        q = c.add_input_bus("q", 4)
        c.set_output_bus("d", q[:2])
        with pytest.raises(NetlistError, match="narrower"):
            ClockedDesign(c, [RegisterSpec("q", "d")])

    def test_missing_free_input(self):
        design = _accumulator()
        with pytest.raises(NetlistError, match="missing value"):
            design.step({"x": 1})  # 'en' absent

    def test_unknown_input_rejected(self):
        design = _counter()
        with pytest.raises(NetlistError, match="unknown input"):
            design.step({"bogus": 1})

    def test_free_inputs_listed(self):
        design = _accumulator()
        assert sorted(design.free_inputs) == ["en", "x"]
