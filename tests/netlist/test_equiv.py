"""Tests for combinational equivalence checking (repro.netlist.equiv)."""

import pytest

from repro.adders import build_kogge_stone_adder, build_ripple_adder
from repro.netlist.circuit import Circuit, NetlistError
from repro.netlist.equiv import (
    build_miter,
    check_equivalent,
    matched_buses,
    minimize_counterexample,
    net_signatures,
    random_input_batch,
    signature_classes,
    structural_equal,
    structural_key,
    verify_counterexample,
)
from repro.netlist.faults import Fault, apply_fault
from repro.netlist.simulate import simulate


def _xor_pair():
    """Two structurally different but equivalent 1-bit circuits."""
    c1 = Circuit("direct")
    a = c1.add_input("a")
    b = c1.add_input("b")
    c1.set_output("y", c1.xor2(a, b))

    c2 = Circuit("decomposed")  # a^b == (a|b) & ~(a&b)
    a = c2.add_input("a")
    b = c2.add_input("b")
    c2.set_output("y", c2.and2(c2.or2(a, b), c2.not_(c2.and2(a, b))))
    return c1, c2


# ---------------------------------------------------------------------------
# Interface matching
# ---------------------------------------------------------------------------


class TestMatchedBuses:
    def test_shared_buses_default_pairing(self):
        c1 = build_ripple_adder(8)
        c2 = build_kogge_stone_adder(8)
        pairs = matched_buses(c1, c2)
        assert ("sum", "sum") in pairs

    def test_input_interface_mismatch_rejected(self):
        c1 = build_ripple_adder(8)
        c2 = build_ripple_adder(16)
        with pytest.raises(NetlistError, match="input interfaces differ"):
            matched_buses(c1, c2)

    def test_width_mismatch_rejected(self):
        c1 = Circuit("one")
        a = c1.add_input("a")
        c1.set_output("y", c1.not_(a))
        c2 = Circuit("two")
        a = c2.add_input("a")
        c2.set_output_bus("y", [c2.not_(a), c2.buf(a)])
        with pytest.raises(NetlistError, match="different widths"):
            matched_buses(c1, c2)

    def test_no_shared_outputs_rejected(self):
        c1 = Circuit("one")
        a = c1.add_input("a")
        c1.set_output("y", c1.not_(a))
        c2 = Circuit("two")
        a = c2.add_input("a")
        c2.set_output("z", c2.not_(a))
        with pytest.raises(NetlistError, match="share no output bus"):
            matched_buses(c1, c2)
        # Explicit pairing still works.
        assert matched_buses(c1, c2, [("y", "z")]) == [("y", "z")]


# ---------------------------------------------------------------------------
# Structural key
# ---------------------------------------------------------------------------


class TestStructuralKey:
    def test_identical_builds_compare_equal(self):
        assert structural_equal(build_ripple_adder(8), build_ripple_adder(8))

    def test_commutative_operands_canonicalized(self):
        c1 = Circuit("t")
        a = c1.add_input("a")
        b = c1.add_input("b")
        c1.set_output("y", c1.and2(a, b))
        c2 = Circuit("t")
        a = c2.add_input("a")
        b = c2.add_input("b")
        c2.set_output("y", c2.and2(b, a))
        assert structural_equal(c1, c2)

    def test_different_function_different_key(self):
        c1, c2 = _xor_pair()
        assert structural_key(c1) != structural_key(c2)


# ---------------------------------------------------------------------------
# Miter construction
# ---------------------------------------------------------------------------


class TestMiter:
    def test_miter_neq_flags_exactly_disagreements(self):
        c1, c2 = _xor_pair()
        # Break c2: invert its output so it disagrees everywhere.
        broken = Circuit("broken")
        a = broken.add_input("a")
        b = broken.add_input("b")
        broken.set_output("y", broken.xnor2(a, b))
        good = build_miter(c1, c2)
        bad = build_miter(c1, broken)
        for a_v in (0, 1):
            for b_v in (0, 1):
                ins = {"a": a_v, "b": b_v}
                assert simulate(good, ins)["neq"] == 0
                assert simulate(bad, ins)["neq"] == 1

    def test_miter_exposes_diff_buses(self):
        c1 = build_ripple_adder(4)
        c2 = build_kogge_stone_adder(4)
        miter = build_miter(c1, c2)
        assert "neq" in miter.output_buses
        assert any(name.startswith("diff_sum") for name in miter.output_buses)
        # Shared inputs: one a bus, one b bus, both 4 bits wide.
        assert {n: len(v) for n, v in miter.input_buses.items()} == {
            "a": 4,
            "b": 4,
        }


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------


class TestSignatures:
    def test_random_batch_is_seed_deterministic(self):
        c = build_ripple_adder(16)
        assert random_input_batch(c, 32, seed=7) == random_input_batch(
            c, 32, seed=7
        )
        assert random_input_batch(c, 32, seed=7) != random_input_batch(
            c, 32, seed=8
        )

    def test_signatures_match_single_vector_simulation(self):
        c = build_ripple_adder(4)
        sigs = net_signatures(c, num_vectors=16, seed=3)
        batch = random_input_batch(c, 16, seed=3)
        for v in range(16):
            out = simulate(c, {"a": batch["a"][v], "b": batch["b"][v]})
            for bit, net in enumerate(c.output_bus("sum")):
                assert (sigs[net] >> v) & 1 == (out["sum"] >> bit) & 1

    def test_duplicate_logic_lands_in_one_class(self):
        c = Circuit("dup")
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.and2(a, b)
        y = c.and2(a, b)  # structural duplicate
        c.set_output("y", c.or2(x, y))
        classes = signature_classes(c, num_vectors=64)
        assert any({x, y} <= set(cls) for cls in classes)


# ---------------------------------------------------------------------------
# Counterexamples
# ---------------------------------------------------------------------------


class TestCounterexamples:
    def test_verify_finds_first_differing_bit(self):
        c1 = build_ripple_adder(8)
        mutant = apply_fault(c1, Fault(c1.output_bus("sum")[3], 1))
        pairs = [("sum", "sum")]
        assert verify_counterexample(c1, mutant, pairs, {"a": 0, "b": 0}) == (
            "sum",
            3,
        )
        # a=8,b=0 sets sum[3]=1 in both circuits: no disagreement there.
        assert verify_counterexample(c1, mutant, pairs, {"a": 8, "b": 0}) is None

    def test_minimization_is_one_minimal(self):
        c1 = build_ripple_adder(8)
        mutant = apply_fault(c1, Fault(c1.output_bus("sum")[3], 0))
        pairs = [("sum", "sum")]
        dense = {"a": 0xAB, "b": 0xCD}
        assert verify_counterexample(c1, mutant, pairs, dense) is not None
        small = minimize_counterexample(c1, mutant, pairs, dense)
        assert verify_counterexample(c1, mutant, pairs, small) is not None
        # Clearing any single remaining set bit kills the disagreement.
        for name, value in small.items():
            for bit in range(value.bit_length()):
                if (value >> bit) & 1:
                    trial = dict(small)
                    trial[name] = value & ~(1 << bit)
                    assert (
                        verify_counterexample(c1, mutant, pairs, trial) is None
                    ), (name, bit)


# ---------------------------------------------------------------------------
# The full funnel
# ---------------------------------------------------------------------------


class TestCheckEquivalent:
    def test_identical_circuits_settle_structurally(self):
        result = check_equivalent(build_ripple_adder(16), build_ripple_adder(16))
        assert result.equivalent and result.method == "structural"

    def test_cross_architecture_needs_bdd_proof(self):
        result = check_equivalent(
            build_ripple_adder(16),
            build_kogge_stone_adder(16),
            [("sum", "sum")],
        )
        assert result.equivalent and result.method == "bdd"
        assert result.bdd_nodes > 0
        assert result.candidates == 17  # sum is n+1 bits

    def test_planted_fault_refuted_with_replayable_counterexample(self):
        """The acceptance-criterion scenario: apply_fault mutant caught."""
        clean = build_ripple_adder(16)
        # Stuck-at-0 on an internal carry net (the last gate driving sum[8]).
        victim = clean.driver_of(clean.output_bus("sum")[8]).inputs[0]
        mutant = apply_fault(clean, Fault(victim, 0))
        result = check_equivalent(clean, mutant, [("sum", "sum")])
        assert not result.equivalent
        assert result.method in ("simulation", "bdd")
        assert result.minimized
        cex = result.counterexample
        assert cex is not None
        # Replay: the recorded vector really distinguishes the circuits.
        bus, bit = result.mismatch
        out_clean = simulate(clean, cex)
        out_mutant = simulate(mutant, cex)
        assert (out_clean[bus] >> bit) & 1 != (out_mutant[bus] >> bit) & 1
        assert out_clean["sum"] == cex["a"] + cex["b"]

    def test_rare_disagreement_caught_by_bdd_stage(self):
        """A mismatch too rare for random vectors is still refuted."""
        c1 = Circuit("and_wide")
        a1 = c1.add_input_bus("a", 16)
        acc = a1[0]
        for net in a1[1:]:
            acc = c1.and2(acc, net)
        c1.set_output("y", acc)
        c2 = Circuit("const_zero")
        c2.add_input_bus("a", 16)
        c2.set_output("y", c2.const0())
        # Disagrees only at a=0xffff: ~1.5e-5 per random vector.
        result = check_equivalent(c1, c2, [("y", "y")], sim_vectors=64)
        assert not result.equivalent and result.method == "bdd"
        assert result.counterexample == {"a": 0xFFFF}

    def test_sim_vectors_zero_goes_straight_to_bdd(self):
        c1, c2 = _xor_pair()
        result = check_equivalent(c1, c2, sim_vectors=0)
        assert result.equivalent and result.method == "bdd"
        assert result.sim_vectors == 0

    def test_result_round_trips_to_dict(self):
        clean = build_ripple_adder(8)
        mutant = apply_fault(clean, Fault(clean.output_bus("sum")[0], 1))
        result = check_equivalent(clean, mutant, [("sum", "sum")])
        payload = result.to_dict()
        assert payload["equivalent"] is False
        assert payload["mismatch"] == ["sum", 0]
        assert payload["seed"] == result.seed
        assert isinstance(payload["counterexample"], dict)
