"""Tests for multi-operand addition (repro.adders.multi_operand)."""

import random

import pytest

from repro.adders.multi_operand import build_multi_operand_adder, result_width
from repro.netlist.simulate import simulate
from repro.netlist.validate import check_circuit


def _feed(count, width, gen):
    return {f"op{i}": gen.randrange(1 << width) for i in range(count)}


class TestResultWidth:
    @pytest.mark.parametrize(
        "width,count,expected",
        [(8, 2, 9), (8, 3, 10), (8, 4, 10), (8, 5, 11), (8, 8, 11), (8, 9, 12)],
    )
    def test_result_width(self, width, count, expected):
        assert result_width(width, count) == expected

    def test_bound_is_tight_enough(self):
        # the maximum possible sum always fits
        for count in (2, 3, 5, 9):
            width = 6
            max_sum = count * ((1 << width) - 1)
            assert max_sum < (1 << result_width(width, count))


class TestExact:
    @pytest.mark.parametrize("count", [2, 3, 4, 7])
    def test_random_sums(self, count):
        width = 8
        c = build_multi_operand_adder(width, count)
        check_circuit(c)
        gen = random.Random(count)
        for _ in range(150):
            feed = _feed(count, width, gen)
            assert simulate(c, feed)["sum"] == sum(feed.values()), feed

    def test_exhaustive_tiny(self):
        c = build_multi_operand_adder(2, 3)
        for a in range(4):
            for b in range(4):
                for d in range(4):
                    got = simulate(c, {"op0": a, "op1": b, "op2": d})["sum"]
                    assert got == a + b + d

    def test_all_max_operands(self):
        width, count = 10, 5
        c = build_multi_operand_adder(width, count)
        top = (1 << width) - 1
        feed = {f"op{i}": top for i in range(count)}
        assert simulate(c, feed)["sum"] == count * top

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            build_multi_operand_adder(0, 3)
        with pytest.raises(ValueError):
            build_multi_operand_adder(8, 1)
        with pytest.raises(ValueError, match="final adder"):
            build_multi_operand_adder(8, 3, final_adder="beads")


class TestSpeculativeFinal:
    def test_scsa_final_mostly_exact(self):
        c = build_multi_operand_adder(8, 4, final_adder="scsa", window_size=6)
        gen = random.Random(9)
        wrong = sum(
            simulate(c, feed)["sum"] != sum(feed.values())
            for feed in (_feed(4, 8, gen) for _ in range(400))
        )
        assert wrong < 20

    def test_vlcsa_final_reliable(self):
        c = build_multi_operand_adder(8, 4, final_adder="vlcsa1", window_size=3)
        gen = random.Random(10)
        stalls = 0
        for _ in range(300):
            feed = _feed(4, 8, gen)
            out = simulate(c, feed)
            assert out["sum_rec"] == sum(feed.values())
            if not out["err"]:
                assert out["sum"] == sum(feed.values())
            stalls += out["err"]
        assert stalls > 0
