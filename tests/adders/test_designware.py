"""Tests for the DesignWare virtual-synthesis substitute."""


from repro.adders.designware import (
    DESIGNWARE_CANDIDATES,
    build_designware_adder,
    designware_report,
)
from repro.netlist.simulate import simulate
from repro.netlist.timing import critical_delay

from tests.conftest import random_pairs


def test_result_adds_correctly():
    c = build_designware_adder(32)
    for a, b in random_pairs(32, 80):
        assert simulate(c, {"a": a, "b": b})["sum"] == a + b


def test_leaderboard_covers_all_candidates():
    report = designware_report(32)
    assert len(report.leaderboard) == len(DESIGNWARE_CANDIDATES)
    names = [arch for arch, _, _ in report.leaderboard]
    assert set(names) == set(DESIGNWARE_CANDIDATES)


def test_leaderboard_sorted_by_delay():
    report = designware_report(32)
    delays = [d for _, d, _ in report.leaderboard]
    assert delays == sorted(delays)


def test_winner_is_fastest():
    report = designware_report(64)
    assert report.delay == report.leaderboard[0][1]
    assert report.architecture == report.leaderboard[0][0]


def test_never_picks_linear_time_architectures():
    """Ripple and carry-skip can never win a minimal-delay synthesis."""
    for width in (32, 128):
        report = designware_report(width)
        assert report.architecture not in ("ripple", "carry_skip")


def test_faster_than_hybrid_carry_select():
    """Thesis section 7.5: DesignWare beats the hand-built hybrid
    Kogge-Stone carry-select adder."""
    report = designware_report(64)
    hybrid_delay = dict(
        (arch, delay) for arch, delay, _ in report.leaderboard
    )["hybrid_ks_select"]
    assert report.delay < hybrid_delay


def test_no_slower_than_unoptimized_kogge_stone():
    from repro.adders import build_kogge_stone_adder

    for width in (64, 256):
        assert (
            designware_report(width).delay
            <= critical_delay(build_kogge_stone_adder(width)) + 1e-12
        )


def test_memoized_per_width():
    assert designware_report(48) is designware_report(48)


def test_custom_name():
    c = build_designware_adder(16, name="dw16")
    assert c.name == "dw16"


def test_delay_monotone_nondecreasing_in_width():
    d = [designware_report(w).delay for w in (16, 64, 256)]
    assert d[0] <= d[1] <= d[2]
