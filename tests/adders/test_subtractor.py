"""Tests for the subtractor / add-sub generators (repro.adders.subtractor)."""

import random

import pytest

from repro.adders.subtractor import build_addsub, build_subtractor
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs


class TestSubtractor:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
    def test_exhaustive_small(self, width):
        c = build_subtractor(width)
        check_circuit(c)
        mask = (1 << width) - 1
        for a in range(1 << width):
            for b in range(1 << width):
                out = simulate(c, {"a": a, "b": b})
                assert out["diff"] == (a - b) & mask, (a, b)
                assert out["borrow"] == (1 if a < b else 0), (a, b)

    @pytest.mark.parametrize("width", [16, 33, 64])
    def test_random_large(self, width):
        c = build_subtractor(width)
        mask = (1 << width) - 1
        pairs = random_pairs(width, 150, seed=width)
        out = simulate_batch(
            c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
        )
        for (a, b), d, borrow in zip(pairs, out["diff"], out["borrow"]):
            assert d == (a - b) & mask
            assert borrow == (1 if a < b else 0)

    @pytest.mark.parametrize("network", ["brent_kung", "sklansky"])
    def test_alternative_networks(self, network):
        c = build_subtractor(20, adder=network)
        mask = (1 << 20) - 1
        for a, b in random_pairs(20, 80, seed=5):
            assert simulate(c, {"a": a, "b": b})["diff"] == (a - b) & mask

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_subtractor(0)
        with pytest.raises(ValueError, match="unknown adder"):
            build_subtractor(16, adder="slide_rule")


class TestSpeculativeSubtractor:
    def test_mostly_exact_on_spread_operands(self):
        c = build_subtractor(32, adder="scsa", window_size=8)
        gen = random.Random(3)
        mask = (1 << 32) - 1
        wrong = 0
        for _ in range(400):
            a = gen.randrange(1 << 32)
            b = gen.randrange(1 << 32)
            wrong += simulate(c, {"a": a, "b": b})["diff"] != (a - b) & mask
        assert wrong < 30

    def test_nearby_operands_break_speculation(self):
        """Ch. 6's premise at gate level: subtracting *nearby* values makes
        ~b + 1 a long sign-extension pattern, so borrow chains outrun the
        windows far more often than Eq. 3.13 predicts for uniform inputs."""
        c = build_subtractor(32, adder="scsa", window_size=8)
        gen = random.Random(4)
        mask = (1 << 32) - 1
        wrong = 0
        trials = 400
        for _ in range(trials):
            a = gen.randrange(1 << 31, 1 << 32)
            b = a - gen.randrange(1, 1 << 8)  # b just below a
            wrong += simulate(c, {"a": a, "b": b})["diff"] != (a - b) & mask
        assert wrong > trials * 0.1  # an order above the uniform rate


class TestAddSub:
    @pytest.mark.parametrize("width", [4, 8])
    def test_exhaustive_both_modes(self, width):
        c = build_addsub(width)
        check_circuit(c)
        mask = (1 << width) - 1
        step = 1 if width <= 4 else 3
        for a in range(0, 1 << width, step):
            for b in range(0, 1 << width, step):
                add = simulate(c, {"a": a, "b": b, "mode": 0})
                sub = simulate(c, {"a": a, "b": b, "mode": 1})
                assert add["result"] == (a + b) & mask
                assert add["carry"] == (a + b) >> width
                assert sub["result"] == (a - b) & mask
                assert sub["carry"] == (1 if a >= b else 0)

    def test_random_wide(self):
        c = build_addsub(48)
        mask = (1 << 48) - 1
        for a, b in random_pairs(48, 120, seed=9):
            add = simulate(c, {"a": a, "b": b, "mode": 0})
            sub = simulate(c, {"a": a, "b": b, "mode": 1})
            assert add["result"] == (a + b) & mask
            assert sub["result"] == (a - b) & mask

    def test_formally_consistent_with_adder(self):
        """mode=0 slice is formally the plain adder on its sum bits.

        (The shared datapath XORs b with mode; the BDD engine restricts
        nothing, so we compare through simulation-exhaustive instead at
        small width — mode is a free input the plain adder lacks.)"""
        c = build_addsub(6)
        for a in range(64):
            for b in range(64):
                out = simulate(c, {"a": a, "b": b, "mode": 0})
                assert out["result"] + (out["carry"] << 6) == a + b
