"""Functional correctness of every conventional adder generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ADDER_GENERATORS
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs

GENERATORS = sorted(ADDER_GENERATORS)


@pytest.mark.parametrize("name", GENERATORS)
@pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
def test_exhaustive_small_widths(name, width):
    """Every generator adds exactly on all inputs at tiny widths."""
    c = ADDER_GENERATORS[name](width)
    check_circuit(c)
    xs, ys = [], []
    for a in range(1 << width):
        for b in range(1 << width):
            xs.append(a)
            ys.append(b)
    out = simulate_batch(c, {"a": xs, "b": ys})["sum"]
    for a, b, s in zip(xs, ys, out):
        assert s == a + b, (name, width, a, b)


@pytest.mark.parametrize("name", GENERATORS)
@pytest.mark.parametrize("width", [8, 17, 32, 64])
def test_random_and_corner_cases(name, width):
    c = ADDER_GENERATORS[name](width)
    pairs = random_pairs(width, 150, seed=width)
    out = simulate_batch(
        c, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
    )["sum"]
    for (a, b), s in zip(pairs, out):
        assert s == a + b, (name, width, a, b)


@pytest.mark.parametrize("name", GENERATORS)
def test_sum_bus_width_is_n_plus_one(name):
    c = ADDER_GENERATORS[name](12)
    assert len(c.output_bus("sum")) == 13


@pytest.mark.parametrize("name", GENERATORS)
def test_carry_out_is_top_bit(name):
    c = ADDER_GENERATORS[name](8)
    top = (1 << 8) - 1
    assert simulate(c, {"a": top, "b": 1})["sum"] == 256
    assert simulate(c, {"a": top, "b": top})["sum"] == 2 * top


@pytest.mark.parametrize("name", GENERATORS)
def test_zero_identity(name):
    c = ADDER_GENERATORS[name](16)
    for v in (0, 1, 0x5555, 0xFFFF):
        assert simulate(c, {"a": v, "b": 0})["sum"] == v
        assert simulate(c, {"a": 0, "b": v})["sum"] == v


@pytest.mark.parametrize("name", GENERATORS)
def test_invalid_width_rejected(name):
    with pytest.raises(ValueError):
        ADDER_GENERATORS[name](0)


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=(1 << 48) - 1),
    b=st.integers(min_value=0, max_value=(1 << 48) - 1),
)
def test_kogge_stone_hypothesis_48bit(a, b):

    c = _KS48
    assert simulate(c, {"a": a, "b": b})["sum"] == a + b


from repro.adders import build_kogge_stone_adder as _build_ks  # noqa: E402

_KS48 = _build_ks(48)


def test_ripple_with_cin():
    from repro.adders import build_ripple_adder

    c = build_ripple_adder(8, with_cin=True)
    for a, b, cin in [(0, 0, 1), (255, 255, 1), (100, 27, 0), (100, 27, 1)]:
        assert simulate(c, {"a": a, "b": b, "cin": cin})["sum"] == a + b + cin


def test_carry_select_block_size_variants():
    from repro.adders import build_carry_select_adder

    for block in (2, 3, 5, 8, 16):
        c = build_carry_select_adder(16, block=block)
        pairs = random_pairs(16, 40, seed=block)
        for a, b in pairs:
            assert simulate(c, {"a": a, "b": b})["sum"] == a + b


def test_carry_select_kogge_stone_hybrid():
    from repro.adders import build_carry_select_adder

    c = build_carry_select_adder(32, sub_adder="kogge_stone")
    for a, b in random_pairs(32, 60):
        assert simulate(c, {"a": a, "b": b})["sum"] == a + b


def test_carry_select_unknown_sub_adder_rejected():
    from repro.adders import build_carry_select_adder

    with pytest.raises(ValueError, match="sub-adder"):
        build_carry_select_adder(16, sub_adder="magic")


def test_carry_skip_block_size_variants():
    from repro.adders import build_carry_skip_adder

    for block in (2, 4, 7):
        c = build_carry_skip_adder(20, block=block)
        for a, b in random_pairs(20, 40, seed=block):
            assert simulate(c, {"a": a, "b": b})["sum"] == a + b
