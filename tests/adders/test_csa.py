"""Tests for the carry-save reduction substrate (repro.adders.csa)."""

import itertools
import random

import pytest

from repro.adders.csa import (
    add_final_prefix,
    columns_to_rows,
    full_adder_3to2,
    half_adder,
    reduce_columns,
)
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import simulate


def test_half_adder_truth_table():
    c = Circuit("t")
    a = c.add_input("a")
    b = c.add_input("b")
    s, carry = half_adder(c, a, b)
    c.set_output("s", s)
    c.set_output("c", carry)
    for x, y in itertools.product((0, 1), repeat=2):
        out = simulate(c, {"a": x, "b": y})
        assert out["s"] + 2 * out["c"] == x + y


def test_full_adder_3to2_truth_table():
    c = Circuit("t")
    ins = [c.add_input(n) for n in "abd"]
    s, carry = full_adder_3to2(c, *ins)
    c.set_output("s", s)
    c.set_output("c", carry)
    for x, y, z in itertools.product((0, 1), repeat=3):
        out = simulate(c, {"a": x, "b": y, "d": z})
        assert out["s"] + 2 * out["c"] == x + y + z


class TestReduceColumns:
    def _column_sum_circuit(self, depths):
        """Columns with the given depths, all bits as inputs."""
        c = Circuit("t")
        columns = []
        names = []
        for w, depth in enumerate(depths):
            col = []
            for j in range(depth):
                name = f"x{w}_{j}"
                col.append(c.add_input(name))
                names.append((name, w))
            columns.append(col)
        return c, columns, names

    @pytest.mark.parametrize("depths", [[3], [4, 4], [1, 5, 2], [7, 7, 7, 7]])
    def test_reduction_preserves_weighted_sum(self, depths):
        c, columns, names = self._column_sum_circuit(depths)
        reduced = reduce_columns(c, columns)
        assert all(len(col) <= 2 for col in reduced)
        row_a, row_b = columns_to_rows(c, reduced)
        sums = add_final_prefix(c, row_a, row_b)
        c.set_output_bus("total", sums)
        gen = random.Random(sum(depths))
        for _ in range(40):
            assignment = {name: gen.randint(0, 1) for name, _ in names}
            want = sum(bit << w for (name, w), bit in
                       ((pair, assignment[pair[0]]) for pair in names))
            got = simulate(c, assignment)["total"]
            assert got == want, assignment

    def test_empty_and_shallow_columns_untouched(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        reduced = reduce_columns(c, [[a], [], [a, b]])
        assert [len(col) for col in reduced] == [1, 0, 2]

    def test_columns_to_rows_rejects_deep_columns(self):
        c = Circuit("t")
        a = c.add_input("a")
        with pytest.raises(ValueError, match="reduced"):
            columns_to_rows(c, [[a, a, a]])


def test_add_final_prefix_mismatched_rows():
    c = Circuit("t")
    a = c.add_input_bus("a", 3)
    b = c.add_input_bus("b", 2)
    with pytest.raises(ValueError, match="equal width"):
        add_final_prefix(c, a, b)
