"""Delay/area complexity orderings the thesis' arguments rest on (Ch. 2-4)."""

import pytest

from repro.adders import (
    build_brent_kung_adder,
    build_carry_skip_adder,
    build_kogge_stone_adder,
    build_ripple_adder,
    build_sklansky_adder,
)
from repro.netlist.area import area
from repro.netlist.timing import analyze_timing, critical_delay


def test_ripple_delay_is_linear_in_width():
    d32 = critical_delay(build_ripple_adder(32))
    d64 = critical_delay(build_ripple_adder(64))
    assert d64 / d32 == pytest.approx(2.0, rel=0.15)


def test_prefix_adders_beat_ripple_by_width_64():
    ripple = critical_delay(build_ripple_adder(64))
    for builder in (build_kogge_stone_adder, build_brent_kung_adder, build_sklansky_adder):
        assert critical_delay(builder(64)) < ripple / 3


def test_carry_skip_beats_ripple_at_width():
    # Bypass cuts the worst-case chain to ~2*sqrt(n) blocks.
    assert critical_delay(build_carry_skip_adder(64)) < critical_delay(
        build_ripple_adder(64)
    )


def test_kogge_stone_is_fastest_prefix_variant():
    """Thesis section 4.1: "Kogge-Stone adder is considered as the possible
    fastest adder design in traditional adders"."""
    for width in (64, 256):
        ks = critical_delay(build_kogge_stone_adder(width))
        assert ks <= critical_delay(build_brent_kung_adder(width))
        assert ks <= critical_delay(build_sklansky_adder(width))


def test_brent_kung_is_smallest_log_depth_variant():
    for width in (64, 256):
        bk = area(build_brent_kung_adder(width))
        assert bk < area(build_kogge_stone_adder(width))
        assert bk < area(build_sklansky_adder(width))


def test_ripple_is_smallest_overall():
    for width in (32, 128):
        r = area(build_ripple_adder(width))
        assert r < area(build_kogge_stone_adder(width))
        assert r < area(build_brent_kung_adder(width))


def test_logic_depth_of_kogge_stone_is_logarithmic():
    # pg row + log2(n) prefix levels (2 gates per black cell) + sum xor
    for width, bound in [(64, 2 + 2 * 6 + 1), (256, 2 + 2 * 8 + 1), (512, 2 + 2 * 9 + 1)]:
        report = analyze_timing(build_kogge_stone_adder(width))
        assert report.logic_depth() <= bound


def test_scsa_depth_depends_on_window_not_width():
    """Thesis section 4.3: SCSA critical path is O(log k), independent of n."""
    from repro.core import build_scsa_adder

    d128 = analyze_timing(build_scsa_adder(128, 16)).logic_depth()
    d512 = analyze_timing(build_scsa_adder(512, 16)).logic_depth()
    assert abs(d512 - d128) <= 1
