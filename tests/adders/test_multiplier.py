"""Tests for the Wallace multiplier extension (repro.adders.multiplier)."""

import random

import pytest

from repro.adders.multiplier import build_multiplier
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit


class TestExactMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
    def test_exhaustive_small(self, width):
        c = build_multiplier(width)
        check_circuit(c)
        xs, ys = [], []
        for a in range(1 << width):
            for b in range(1 << width):
                xs.append(a)
                ys.append(b)
        out = simulate_batch(c, {"a": xs, "b": ys})["product"]
        for a, b, p in zip(xs, ys, out):
            assert p == a * b, (width, a, b)

    @pytest.mark.parametrize("width", [8, 12, 16])
    def test_random_large(self, width):
        c = build_multiplier(width)
        gen = random.Random(width)
        for _ in range(150):
            a = gen.randrange(1 << width)
            b = gen.randrange(1 << width)
            assert simulate(c, {"a": a, "b": b})["product"] == a * b

    @pytest.mark.parametrize("network", ["brent_kung", "sklansky"])
    def test_alternative_final_prefix(self, network):
        c = build_multiplier(8, final_adder=network)
        gen = random.Random(3)
        for _ in range(80):
            a, b = gen.randrange(256), gen.randrange(256)
            assert simulate(c, {"a": a, "b": b})["product"] == a * b

    def test_corner_cases(self):
        c = build_multiplier(10)
        top = (1 << 10) - 1
        for a, b in [(0, 0), (top, top), (top, 1), (1, top), (0, top)]:
            assert simulate(c, {"a": a, "b": b})["product"] == a * b

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            build_multiplier(0)

    def test_unknown_final_adder_rejected(self):
        with pytest.raises(ValueError, match="final adder"):
            build_multiplier(8, final_adder="abacus")


class TestSpeculativeMultiplier:
    def test_scsa_final_mostly_exact(self):
        c = build_multiplier(8, final_adder="scsa", window_size=6)
        gen = random.Random(5)
        wrong = 0
        for _ in range(500):
            a, b = gen.randrange(256), gen.randrange(256)
            wrong += simulate(c, {"a": a, "b": b})["product"] != a * b
        assert wrong < 25  # speculative product errors are rare

    def test_vlcsa_final_is_reliable(self):
        c = build_multiplier(8, final_adder="vlcsa1", window_size=4)
        check_circuit(c)
        gen = random.Random(6)
        stalls = 0
        for _ in range(400):
            a, b = gen.randrange(256), gen.randrange(256)
            out = simulate(c, {"a": a, "b": b})
            assert out["product_rec"] == a * b
            if not out["err"]:
                assert out["product"] == a * b
            stalls += out["err"]
        assert stalls > 0  # k=4 on a 16-bit product must stall sometimes

    def test_default_window_size_solved_from_product_width(self):
        c = build_multiplier(16, final_adder="scsa")  # no explicit k
        gen = random.Random(7)
        for _ in range(60):
            a, b = gen.randrange(1 << 16), gen.randrange(1 << 16)
            got = simulate(c, {"a": a, "b": b})["product"]
            # at the 0.01% operating point 60 draws should all be exact
            assert got == a * b


class TestMultiplierStructure:
    def test_speculative_final_no_slower_and_smaller(self):
        """Extension finding: with carry-save arrival skew the speculative
        final adder's delay win largely vanishes (the Wallace tree
        dominates), but its area win survives."""
        from repro.netlist.area import area
        from repro.netlist.optimize import optimize
        from repro.netlist.timing import analyze_timing

        exact, _ = optimize(build_multiplier(16))
        spec, _ = optimize(build_multiplier(16, final_adder="scsa", window_size=8))
        d_exact = analyze_timing(exact).critical_delay
        d_spec = analyze_timing(spec).critical_delay
        assert d_spec <= d_exact * 1.05
        assert area(spec) < area(exact)

    def test_product_bus_width(self):
        c = build_multiplier(8)
        assert len(c.output_bus("product")) == 16

    def test_width_one(self):
        c = build_multiplier(1)
        for a in (0, 1):
            for b in (0, 1):
                assert simulate(c, {"a": a, "b": b})["product"] == a * b
