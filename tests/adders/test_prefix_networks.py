"""Structural properties of the prefix-network schedules."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.prefix import (
    PREFIX_NETWORKS,
    brent_kung_network,
    build_prefix_adder,
    kogge_stone_network,
    serial_network,
    sklansky_network,
)

NETWORK_NAMES = sorted(PREFIX_NETWORKS)


def _simulate_prefix(width, network):
    """Symbolically run the schedule: each node ends covering [lo..i]."""
    spans = [(i, i) for i in range(width)]  # (lo, hi) inclusive
    for level in network:
        snapshot = list(spans)
        for target, source in level:
            t_lo, t_hi = snapshot[target]
            s_lo, s_hi = snapshot[source]
            # contiguity: the combined ranges must touch
            assert s_hi + 1 == t_lo, (target, source, snapshot[target], snapshot[source])
            spans[target] = (s_lo, t_hi)
    return spans


@pytest.mark.parametrize("name", NETWORK_NAMES)
@pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 13, 16, 31, 64, 100])
def test_network_computes_all_prefixes(name, width):
    """After the schedule, node i covers exactly bits [0..i]."""
    spans = _simulate_prefix(width, PREFIX_NETWORKS[name](width))
    for i, (lo, hi) in enumerate(spans):
        assert lo == 0 and hi == i, (name, width, i, spans[i])


@pytest.mark.parametrize("name", NETWORK_NAMES)
def test_no_duplicate_targets_within_a_level(name):
    """Each node is written at most once per level (sources may be targets —
    combines read the pre-level snapshot)."""
    width = 32
    for level in PREFIX_NETWORKS[name](width):
        targets = [t for t, _ in level]
        assert len(targets) == len(set(targets)), name


class TestDepth:
    @pytest.mark.parametrize("width", [8, 16, 32, 64, 128, 256, 512])
    def test_kogge_stone_minimal_depth(self, width):
        assert len(kogge_stone_network(width)) == math.ceil(math.log2(width))

    @pytest.mark.parametrize("width", [8, 16, 32, 64, 256])
    def test_sklansky_minimal_depth(self, width):
        assert len(sklansky_network(width)) == math.ceil(math.log2(width))

    @pytest.mark.parametrize("width", [8, 16, 32, 64])
    def test_brent_kung_depth(self, width):
        assert len(brent_kung_network(width)) == 2 * int(math.log2(width)) - 1

    def test_serial_depth(self):
        assert len(serial_network(32)) == 31


class TestNodeCounts:
    def _nodes(self, network):
        return sum(len(level) for level in network)

    @pytest.mark.parametrize("width", [16, 64, 256])
    def test_kogge_stone_node_count(self, width):
        # n*log2(n) - n + 1 nodes for power-of-two widths
        expected = width * int(math.log2(width)) - width + 1
        assert self._nodes(kogge_stone_network(width)) == expected

    @pytest.mark.parametrize("width", [16, 64, 256])
    def test_brent_kung_node_count(self, width):
        # 2n - log2(n) - 2 for power-of-two widths
        expected = 2 * width - int(math.log2(width)) - 2
        assert self._nodes(brent_kung_network(width)) == expected

    @pytest.mark.parametrize("width", [16, 64])
    def test_brent_kung_is_sparsest_log_network(self, width):
        bk = self._nodes(brent_kung_network(width))
        ks = self._nodes(kogge_stone_network(width))
        sk = self._nodes(sklansky_network(width))
        assert bk < sk <= ks

    def test_serial_node_count(self):
        assert self._nodes(serial_network(32)) == 31


@settings(max_examples=30, deadline=None)
@given(width=st.integers(min_value=1, max_value=70))
def test_all_networks_valid_at_arbitrary_widths(width):
    for name in NETWORK_NAMES:
        spans = _simulate_prefix(width, PREFIX_NETWORKS[name](width))
        assert all(span == (0, i) for i, span in enumerate(spans)), name


def test_build_prefix_adder_unknown_network():
    with pytest.raises(ValueError, match="unknown prefix network"):
        build_prefix_adder(8, network_name="mystery")


def test_build_prefix_adder_group_pg_outputs():
    from repro.netlist.simulate import simulate

    c = build_prefix_adder(8, emit_group_pg=True)
    out = simulate(c, {"a": 0xFF, "b": 0x00})
    assert out["group_p"] == 1 and out["group_g"] == 0
    out = simulate(c, {"a": 0xFF, "b": 0x01})
    assert out["group_g"] == 1
