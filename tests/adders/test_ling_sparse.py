"""Tests for the Ling and sparse Kogge-Stone adders."""


import pytest

from repro.adders.ling import build_ling_adder
from repro.adders.sparse import build_sparse_kogge_stone_adder
from repro.netlist.area import area
from repro.netlist.bdd import prove_equivalent
from repro.netlist.simulate import simulate, simulate_batch
from repro.netlist.validate import check_circuit

from tests.conftest import random_pairs


class TestLing:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
    def test_exhaustive_small(self, width):
        c = build_ling_adder(width)
        check_circuit(c)
        for a in range(1 << width):
            for b in range(1 << width):
                assert simulate(c, {"a": a, "b": b})["sum"] == a + b

    @pytest.mark.parametrize("width", [16, 33, 64])
    def test_random_large(self, width):
        c = build_ling_adder(width)
        pairs = random_pairs(width, 200, seed=width)
        out = simulate_batch(
            c, {"a": [x for x, _ in pairs], "b": [y for _, y in pairs]}
        )["sum"]
        for (x, y), s in zip(pairs, out):
            assert s == x + y

    def test_formally_equivalent_to_kogge_stone(self):
        from repro.adders import build_kogge_stone_adder

        result = prove_equivalent(build_ling_adder(16), build_kogge_stone_adder(16))
        assert result.equivalent

    @pytest.mark.parametrize("network", ["brent_kung", "sklansky"])
    def test_alternative_prefix_topologies(self, network):
        c = build_ling_adder(20, network_name=network)
        for x, y in random_pairs(20, 120, seed=7):
            assert simulate(c, {"a": x, "b": y})["sum"] == x + y

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_ling_adder(0)


class TestSparseKoggeStone:
    @pytest.mark.parametrize("width,sparsity", [(8, 2), (8, 4), (12, 3), (16, 4), (17, 4), (20, 5)])
    def test_random(self, width, sparsity):
        c = build_sparse_kogge_stone_adder(width, sparsity)
        check_circuit(c)
        for x, y in random_pairs(width, 200, seed=sparsity):
            assert simulate(c, {"a": x, "b": y})["sum"] == x + y

    def test_sparsity_one_equals_dense(self):
        from repro.adders import build_kogge_stone_adder

        c = build_sparse_kogge_stone_adder(16, 1)
        result = prove_equivalent(c, build_kogge_stone_adder(16))
        assert result.equivalent

    def test_formally_equivalent_to_kogge_stone(self):
        from repro.adders import build_kogge_stone_adder

        result = prove_equivalent(
            build_sparse_kogge_stone_adder(16, 4), build_kogge_stone_adder(16)
        )
        assert result.equivalent

    def test_sparsity_cuts_area(self):
        from repro.adders import build_kogge_stone_adder

        dense = area(build_kogge_stone_adder(64))
        sparse = area(build_sparse_kogge_stone_adder(64, 4))
        assert sparse < 0.8 * dense

    def test_sparsity_costs_delay(self):
        from repro.adders import build_kogge_stone_adder
        from repro.netlist.timing import critical_delay

        assert critical_delay(
            build_sparse_kogge_stone_adder(64, 8)
        ) > critical_delay(build_kogge_stone_adder(64))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_sparse_kogge_stone_adder(0, 4)
        with pytest.raises(ValueError):
            build_sparse_kogge_stone_adder(16, 0)
