"""Tests for the analytical error models (thesis Eq. 3.13 and refinements)."""

import math

import pytest

from repro.model.error_model import (
    expected_long_chain_fraction,
    scsa_error_rate,
    scsa_error_rate_exact,
    union_bound_terms,
    vlsa_error_rate_exact,
    vlsa_error_rate_union,
)


class TestEq313:
    def test_closed_form_matches_thesis_formula(self):
        # P_err = (m-1) * 2^-(k+1) * (1 - 2^-k), m = ceil(n/k)
        n, k = 256, 16
        m = math.ceil(n / k)
        expected = (m - 1) * 2 ** -(k + 1) * (1 - 2 ** -k)
        assert scsa_error_rate(n, k) == pytest.approx(expected)

    def test_thesis_example_n256_k16_is_about_0_01_percent(self):
        """Thesis section 3.2: 'if n = 256, k = 16, P_err ~ 0.01%'."""
        assert scsa_error_rate(256, 16) == pytest.approx(1.14e-4, rel=0.01)

    def test_single_window_has_zero_error(self):
        assert scsa_error_rate(16, 16) == 0.0
        assert scsa_error_rate(16, 32) == 0.0

    def test_error_rate_decreases_with_window_size(self):
        rates = [scsa_error_rate(256, k) for k in range(4, 20)]
        assert rates == sorted(rates, reverse=True)

    def test_error_rate_increases_with_width(self):
        rates = [scsa_error_rate(n, 12) for n in (64, 128, 256, 512)]
        assert rates == sorted(rates)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            scsa_error_rate(0, 4)
        with pytest.raises(ValueError):
            scsa_error_rate(16, 0)

    def test_union_terms_sum_close_to_closed_form(self):
        n, k = 128, 10
        # The diagnostic per-pair terms use the true (remainder-aware)
        # window sizes; their sum approximates Eq. 3.13.
        assert sum(union_bound_terms(n, k)) == pytest.approx(
            scsa_error_rate(n, k), rel=0.35
        )


class TestExactModel:
    @pytest.mark.parametrize("n,k", [(64, 8), (64, 14), (128, 10), (256, 16), (512, 17)])
    def test_exact_at_most_union_bound(self, n, k):
        assert scsa_error_rate_exact(n, k) <= scsa_error_rate(n, k) * 1.001

    @pytest.mark.parametrize("n,k", [(64, 8), (128, 10)])
    def test_exact_close_to_union_bound_at_operating_points(self, n, k):
        exact = scsa_error_rate_exact(n, k)
        approx = scsa_error_rate(n, k)
        assert exact == pytest.approx(approx, rel=0.1)

    def test_exact_matches_monte_carlo(self):
        from repro.model.behavioral import monte_carlo_scsa_error_rate

        n, k = 64, 6
        exact = scsa_error_rate_exact(n, k)
        mc = monte_carlo_scsa_error_rate(n, k, 300_000)
        assert mc == pytest.approx(exact, rel=0.05)

    def test_exact_single_window_zero(self):
        assert scsa_error_rate_exact(16, 16) == 0.0

    def test_exact_brute_force_tiny(self):
        """Exhaustive enumeration at n=6, k=2 against the Markov DP."""
        n, k = 6, 2
        from repro.core.window import plan_windows

        plan = plan_windows(n, k)
        errors = 0
        for a in range(1 << n):
            for b in range(1 << n):
                wrong = False
                true_carry = 0
                for lo, hi in plan.bounds:
                    size = hi - lo
                    mask = (1 << size) - 1
                    aw = (a >> lo) & mask
                    bw = (b >> lo) & mask
                    g = (aw + bw) >> size
                    true_out = (aw + bw + true_carry) >> size
                    if true_out != g:
                        wrong = True
                    true_carry = true_out
                errors += wrong
        brute = errors / (1 << (2 * n))
        assert scsa_error_rate_exact(n, k) == pytest.approx(brute, abs=1e-12)


class TestVlsaModels:
    def test_union_bound_formula(self):
        n, l = 64, 10
        assert vlsa_error_rate_union(n, l) == pytest.approx((n - l) * 0.25 * 2 ** -l)

    @pytest.mark.parametrize("n,l", [(64, 8), (64, 17), (128, 18), (256, 19)])
    def test_exact_at_most_union(self, n, l):
        assert vlsa_error_rate_exact(n, l) <= vlsa_error_rate_union(n, l) * 1.001

    def test_exact_zero_when_chain_covers_width(self):
        assert vlsa_error_rate_exact(16, 16) == 0.0
        assert vlsa_error_rate_exact(16, 20) == 0.0

    def test_exact_matches_monte_carlo(self):
        import numpy as np

        from repro.inputs.generators import uniform_operands
        from repro.model.behavioral import vlsa_error_flags

        n, l = 64, 7
        gen = np.random.default_rng(3)
        a = uniform_operands(n, 400_000, gen)
        b = uniform_operands(n, 400_000, gen)
        mc = float(vlsa_error_flags(a, b, n, l).mean())
        assert mc == pytest.approx(vlsa_error_rate_exact(n, l), rel=0.05)

    def test_exact_brute_force_tiny(self):
        n, l = 8, 3
        errors = 0
        for a in range(1 << n):
            for b in range(1 << n):
                p = a ^ b
                g = a & b
                wrong = False
                for j in range(0, n - l):
                    if (g >> j) & 1 and all((p >> (j + t)) & 1 for t in range(1, l + 1)):
                        wrong = True
                        break
                errors += wrong
        brute = errors / (1 << (2 * n))
        assert vlsa_error_rate_exact(n, l) == pytest.approx(brute, abs=1e-12)

    def test_invalid_chain_rejected(self):
        with pytest.raises(ValueError):
            vlsa_error_rate_exact(64, 0)
        with pytest.raises(ValueError):
            vlsa_error_rate_union(64, 0)


def test_scsa_needs_smaller_window_than_vlsa_chain():
    """Thesis Table 7.3's point: for 0.01%, SCSA's k < VLSA's l at every
    width — speculation on windows is cheaper than per-bit speculation."""
    from repro.analysis.sizing import scsa_window_size_for, vlsa_chain_length_for

    for n in (64, 128, 256, 512):
        k = scsa_window_size_for(n, 1e-4)
        l = vlsa_chain_length_for(n, 1e-4)
        assert k < l


def test_long_chain_fraction_alias():
    assert expected_long_chain_fraction(64, 10) == vlsa_error_rate_exact(64, 10)
