"""Tests for the closed-form Gaussian error model (repro.model.gaussian_model).

The thesis (§6.7) has no analytical model for 2's-complement Gaussian
inputs; this extension provides one and these tests pin it against Monte
Carlo across the operating range.
"""

import pytest

from repro.inputs.generators import gaussian_operands
from repro.model.behavioral import err0_flags, err1_flags, window_profile
from repro.model.gaussian_model import (
    active_width,
    vlcsa1_gaussian_error_rate,
    vlcsa2_gaussian_stall_rate,
    vlcsa2_gaussian_window_size_for,
)

SIGMA = float(2 ** 32)


class TestActiveWidth:
    def test_grows_with_sigma(self):
        assert active_width(2.0 ** 40) > active_width(2.0 ** 20)

    def test_thesis_sigma(self):
        assert active_width(SIGMA) == pytest.approx(34.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            active_width(1.0)


class TestVlcsa1Model:
    def test_sign_chain_term_dominates(self):
        rate = vlcsa1_gaussian_error_rate(64, 14, SIGMA)
        assert rate == pytest.approx(0.25, abs=0.001)

    def test_matches_thesis_25_01(self):
        """The model's two terms literally explain '25.01%'."""
        rate = vlcsa1_gaussian_error_rate(64, 14, SIGMA)
        assert 0.2500 < rate < 0.2502

    @pytest.mark.parametrize("n,k", [(64, 14), (128, 15), (256, 16)])
    def test_against_monte_carlo(self, n, k, rng):
        a = gaussian_operands(n, 200_000, rng=rng)
        b = gaussian_operands(n, 200_000, rng=rng)
        mc = float(err0_flags(window_profile(a, b, n, k, "lsb")).mean())
        model = vlcsa1_gaussian_error_rate(n, k, SIGMA)
        assert model == pytest.approx(mc, rel=0.02)

    def test_degenerates_to_uniform_model_when_sigma_fills_adder(self):
        from repro.model.error_model import scsa_error_rate

        rate = vlcsa1_gaussian_error_rate(32, 8, float(2 ** 31))
        assert rate == pytest.approx(scsa_error_rate(32, 8))


class TestVlcsa2Model:
    @pytest.mark.parametrize("n,k", [(64, 13), (64, 11), (64, 9), (128, 13), (256, 9)])
    def test_against_monte_carlo_thesis_sigma(self, n, k, rng):
        a = gaussian_operands(n, 400_000, rng=rng)
        b = gaussian_operands(n, 400_000, rng=rng)
        p = window_profile(a, b, n, k, "msb")
        mc = float((err0_flags(p) & err1_flags(p)).mean())
        model = vlcsa2_gaussian_stall_rate(n, k, SIGMA)
        # within 40% relative (MC noise at these tiny rates is real too)
        assert 0.6 * mc < model < 1.6 * max(mc, 1e-5), (n, k, mc, model)

    @pytest.mark.parametrize("s", [24, 40])
    def test_across_sigmas(self, s, rng):
        sigma = float(2 ** s)
        n, k = 128, 11
        a = gaussian_operands(n, 300_000, sigma=sigma, rng=rng)
        b = gaussian_operands(n, 300_000, sigma=sigma, rng=rng)
        p = window_profile(a, b, n, k, "msb")
        mc = float((err0_flags(p) & err1_flags(p)).mean())
        model = vlcsa2_gaussian_stall_rate(n, k, sigma)
        assert 0.5 * mc < model < 2.0 * max(mc, 1e-5), (s, mc, model)

    def test_rate_independent_of_width(self):
        rates = {
            vlcsa2_gaussian_stall_rate(n, 13, SIGMA) for n in (64, 128, 256, 512)
        }
        assert len(rates) == 1  # Table 7.5's width-independence, analytically

    def test_stall_vanishes_when_window_covers_active_region(self):
        assert vlcsa2_gaussian_stall_rate(256, 36, SIGMA) == 0.0


class TestAnalyticTable75:
    """The headline: the analytic solver reproduces Table 7.5 exactly."""

    @pytest.mark.parametrize("n", [64, 128, 256, 512])
    def test_low_target(self, n):
        assert vlcsa2_gaussian_window_size_for(n, 1e-4, SIGMA) == 13

    @pytest.mark.parametrize("n", [64, 128, 256, 512])
    def test_high_target(self, n):
        assert vlcsa2_gaussian_window_size_for(n, 25e-4, SIGMA) == 9

    def test_agrees_with_monte_carlo_solver(self):
        from repro.analysis.sizing import vlcsa2_window_size_for

        analytic = vlcsa2_gaussian_window_size_for(64, 1e-4, SIGMA)
        monte_carlo = vlcsa2_window_size_for(64, 1e-4, samples=150_000)
        assert abs(analytic - monte_carlo) <= 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            vlcsa2_gaussian_window_size_for(64, 0.0, SIGMA)
