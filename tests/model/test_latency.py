"""Tests for the variable-latency timing model (repro.model.latency)."""

import numpy as np
import pytest

from repro.model.latency import (
    SimResult,
    VariableLatencyAdderSim,
    VariableLatencyTiming,
    average_cycle,
    fixed_adder_sim,
)


@pytest.fixture
def timing():
    return VariableLatencyTiming(t_spec=0.40, t_detect=0.38, t_recover=0.70)


class TestTiming:
    def test_clock_covers_longer_of_spec_and_detect(self, timing):
        assert timing.t_clk == pytest.approx(1.05 * 0.40)
        slow_detect = VariableLatencyTiming(0.40, 0.50, 0.70)
        assert slow_detect.t_clk == pytest.approx(1.05 * 0.50)

    def test_recovery_two_cycles(self, timing):
        assert timing.recovery_cycles == 2
        assert timing.recovery_fits_two_cycles

    def test_slow_recovery_detected(self):
        t = VariableLatencyTiming(0.40, 0.38, 1.0)
        assert not t.recovery_fits_two_cycles
        assert t.recovery_cycles == 3

    def test_fast_recovery_single_cycle(self):
        t = VariableLatencyTiming(0.40, 0.38, 0.30)
        assert t.recovery_cycles == 1


class TestAverageCycle:
    def test_eq_5_2(self, timing):
        """T_ave = (1 + P_err) * T_clk for two-cycle recovery."""
        p = 0.0025
        assert average_cycle(timing, p) == pytest.approx((1 + p) * timing.t_clk)

    def test_zero_error_is_pure_clock(self, timing):
        assert average_cycle(timing, 0.0) == pytest.approx(timing.t_clk)

    def test_invalid_rate_rejected(self, timing):
        with pytest.raises(ValueError):
            average_cycle(timing, -0.1)
        with pytest.raises(ValueError):
            average_cycle(timing, 1.5)

    def test_tiny_error_keeps_average_near_speculative(self, timing):
        """Thesis Ch. 5.3: with P_err ~ 0.01%, T_ave ~ T_clk."""
        assert average_cycle(timing, 1e-4) == pytest.approx(timing.t_clk, rel=1e-3)


class TestSimulator:
    def test_run_counts_stalls(self, timing):
        sim = VariableLatencyAdderSim(timing)
        flags = np.array([0, 1, 0, 0, 1, 0, 0, 0], dtype=bool)
        result = sim.run(flags)
        assert result.operations == 8
        assert result.stalls == 2
        assert result.total_cycles == 10
        assert result.stall_rate == pytest.approx(0.25)
        assert result.cycles_per_add == pytest.approx(1.25)

    def test_run_matches_eq_5_2_statistically(self, timing):
        gen = np.random.default_rng(1)
        p = 0.02
        flags = gen.random(200_000) < p
        result = VariableLatencyAdderSim(timing).run(flags)
        predicted = average_cycle(timing, p)
        assert result.average_latency == pytest.approx(predicted, rel=0.02)

    def test_run_predicted(self, timing):
        result = VariableLatencyAdderSim(timing).run_predicted(0.1, 1000)
        assert result.stalls == 100
        assert result.total_cycles == 1100

    def test_speedup_over_fixed_adder(self, timing):
        sim = VariableLatencyAdderSim(timing)
        result = sim.run(np.zeros(100, dtype=bool))
        # equal clock -> speedup 1; slower fixed adder -> speedup > 1
        assert result.speedup_over(timing.t_clk) == pytest.approx(1.0)
        assert result.speedup_over(2 * timing.t_clk) == pytest.approx(2.0)

    def test_empty_stream(self, timing):
        result = VariableLatencyAdderSim(timing).run(np.zeros(0, dtype=bool))
        assert result.operations == 0
        assert result.stall_rate == 0.0
        with pytest.raises(ZeroDivisionError):
            result.speedup_over(1.0)

    def test_fixed_adder_sim(self):
        result = fixed_adder_sim(0.5, 100)
        assert isinstance(result, SimResult)
        assert result.average_latency == pytest.approx(0.5)
        assert result.stalls == 0


class TestEndToEndWithMeasurements:
    def test_vlcsa1_average_beats_kogge_stone_on_uniform_stream(self):
        """The thesis' bottom line, at (n=256, k=16): the variable-latency
        adder's average latency beats the fixed Kogge-Stone's."""
        from repro.analysis.compare import measure_kogge_stone, measure_vlcsa1
        from repro.inputs.generators import uniform_operands
        from repro.model.behavioral import err0_flags, window_profile

        n, k = 256, 16
        m = measure_vlcsa1(n, k)
        timing = VariableLatencyTiming(m.t_spec, m.t_detect, m.t_recover)
        gen = np.random.default_rng(4)
        a = uniform_operands(n, 100_000, gen)
        b = uniform_operands(n, 100_000, gen)
        flags = err0_flags(window_profile(a, b, n, k))
        result = VariableLatencyAdderSim(timing).run(flags)
        ks = measure_kogge_stone(n)
        assert result.speedup_over(ks.delay) > 1.0
