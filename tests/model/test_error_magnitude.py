"""Tests for error-magnitude analysis (repro.model.error_magnitude)."""

import numpy as np
import pytest

from repro.inputs.generators import uniform_operands
from repro.model.behavioral import pack_ints, unpack_ints
from repro.model.error_magnitude import (
    relative_error_stats,
    scsa1_magnitude_stats,
    scsa1_speculative_values,
    vlsa_magnitude_stats,
    vlsa_speculative_values,
)

from tests.conftest import random_pairs


class TestSpeculativeValues:
    @pytest.mark.parametrize("width,k", [(16, 4), (24, 5), (32, 8)])
    def test_scsa_values_match_reference(self, width, k):
        from tests.core.test_scsa import _reference_scsa

        pairs = random_pairs(width, 200, seed=k)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        got = scsa1_speculative_values(a, b, width, k)
        for i, (x, y) in enumerate(pairs):
            assert int(got[i]) == _reference_scsa(x, y, width, k), (x, y)

    @pytest.mark.parametrize("width,l", [(16, 4), (24, 6)])
    def test_vlsa_values_match_bruteforce(self, width, l):
        pairs = random_pairs(width, 200, seed=l)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        got = vlsa_speculative_values(a, b, width, l)
        for i, (x, y) in enumerate(pairs):
            want = 0
            p = x ^ y
            for bit in range(width + 1):
                lo = max(0, bit - l)
                mask = (1 << (bit - lo)) - 1
                carry = (((x >> lo) & mask) + ((y >> lo) & mask)) >> (bit - lo)
                if bit < width:
                    want |= (((p >> bit) & 1) ^ carry) << bit
                else:
                    want |= carry << width
            assert int(got[i]) == want, (x, y)

    def test_vlsa_full_lookahead_is_exact(self):
        width = 20
        pairs = random_pairs(width, 100)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        got = vlsa_speculative_values(a, b, width, width)
        for i, (x, y) in enumerate(pairs):
            assert int(got[i]) == x + y

    def test_width_limit_enforced(self):
        a = pack_ints([0], 64)
        with pytest.raises(ValueError, match="63"):
            scsa1_speculative_values(a, a, 64, 8)
        with pytest.raises(ValueError, match="63"):
            vlsa_speculative_values(a, a, 64, 8)


class TestMagnitudeStructure:
    def test_scsa_errors_are_always_underestimates(self, rng):
        """SCSA truncation drops carries, never adds them (§3.3)."""
        width, k = 32, 5
        a = uniform_operands(width, 50_000, rng)
        b = uniform_operands(width, 50_000, rng)
        spec = scsa1_speculative_values(a, b, width, k)
        true = a[:, 0].astype(np.float64) + b[:, 0].astype(np.float64)
        assert np.all(spec.astype(np.float64) <= true)

    def test_scsa_error_is_a_sum_of_dropped_boundary_carries(self, rng):
        """Each error equals a sum of 2^boundary terms (§3.3's structure)."""
        from repro.core.window import plan_windows

        width, k = 30, 5
        plan = plan_windows(width, k)
        boundaries = {hi for _, hi in plan.bounds}
        a = uniform_operands(width, 30_000, rng)
        b = uniform_operands(width, 30_000, rng)
        spec = scsa1_speculative_values(a, b, width, k)
        av = unpack_ints(a, width)
        bv = unpack_ints(b, width)
        for i in range(len(av)):
            diff = av[i] + bv[i] - int(spec[i])
            while diff:
                low = diff & -diff
                assert low.bit_length() - 1 in boundaries, (av[i], bv[i])
                diff ^= low

    def test_stats_fields_consistent(self, rng):
        width, k = 32, 5
        a = uniform_operands(width, 40_000, rng)
        b = uniform_operands(width, 40_000, rng)
        stats = scsa1_magnitude_stats(a, b, width, k)
        assert stats.samples == 40_000
        assert 0 < stats.errors < stats.samples
        assert 0 < stats.median_relative <= stats.max_relative <= 1.0
        assert stats.error_rate == pytest.approx(stats.errors / stats.samples)

    def test_no_errors_case(self):
        a = pack_ints([1, 2, 3], 16)
        b = pack_ints([4, 5, 6], 16)
        stats = scsa1_magnitude_stats(a, b, 16, 16)  # single window: exact
        assert stats.errors == 0
        assert stats.mean_relative == 0.0

    def test_typical_error_magnitude_is_small(self, rng):
        """§3.3's quantitative content: the *median* erroneous result is
        off by well under 1% when operands use the full width."""
        width, k = 48, 8
        a = uniform_operands(width, 200_000, rng)
        b = uniform_operands(width, 200_000, rng)
        stats = scsa1_magnitude_stats(a, b, width, k)
        assert stats.errors > 20
        assert stats.median_relative < 0.01

    def test_relative_error_stats_on_known_values(self):
        width = 16
        a = pack_ints([100, 200], width)
        b = pack_ints([50, 56], width)
        spec = pack_ints([150, 128], width)  # second value wrong by 128
        stats = relative_error_stats(spec, a, b, width)
        assert stats.errors == 1
        assert stats.max_relative == pytest.approx(128 / 256)


class TestScsaVsVlsaComparison:
    def test_both_schemes_measured_on_same_stream(self, rng):
        width = 48
        a = uniform_operands(width, 100_000, rng)
        b = uniform_operands(width, 100_000, rng)
        scsa = scsa1_magnitude_stats(a, b, width, 8)
        vlsa = vlsa_magnitude_stats(a, b, width, 8)
        # both schemes err on this stream; both keep median impact small
        assert scsa.errors > 0 and vlsa.errors > 0
        assert scsa.median_relative < 0.05
        assert vlsa.median_relative < 0.05
