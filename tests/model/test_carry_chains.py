"""Tests for carry-chain statistics (repro.model.carry_chains)."""

import numpy as np
import pytest

from repro.inputs.generators import gaussian_operands, uniform_operands
from repro.model.behavioral import pack_ints
from repro.model.carry_chains import (
    chain_length_counts,
    chain_length_histogram,
    longest_chain_lengths,
)


def _brute_chain_lengths(a, b, width):
    """Reference: enumerate chains (generate + maximal propagate run)."""
    p = a ^ b
    g = a & b
    lengths = []
    for j in range(width):
        if (g >> j) & 1:
            run = 0
            while j + 1 + run < width and (p >> (j + 1 + run)) & 1:
                run += 1
            lengths.append(1 + run)
    return lengths


class TestCounts:
    def test_counts_match_bruteforce(self):
        width = 20
        gen = np.random.default_rng(5)
        vals_a = [int(v) for v in gen.integers(0, 1 << width, 200)]
        vals_b = [int(v) for v in gen.integers(0, 1 << width, 200)]
        counts = chain_length_counts(
            pack_ints(vals_a, width), pack_ints(vals_b, width), width
        )
        brute = np.zeros(width + 1, dtype=np.int64)
        for x, y in zip(vals_a, vals_b):
            for length in _brute_chain_lengths(x, y, width):
                brute[length] += 1
        np.testing.assert_array_equal(counts, brute)

    def test_known_single_vector(self):
        # a=0b0111, b=0b0001: generate at 0, propagates at 1,2 -> one chain len 3
        counts = chain_length_counts(pack_ints([0b0111], 4), pack_ints([0b0001], 4), 4)
        assert counts[3] == 1 and counts.sum() == 1

    def test_no_generate_no_chain(self):
        counts = chain_length_counts(pack_ints([0b1010], 4), pack_ints([0b0101], 4), 4)
        assert counts.sum() == 0

    def test_counts_zero_index_unused(self):
        counts = chain_length_counts(pack_ints([3], 4), pack_ints([3], 4), 4)
        assert counts[0] == 0

    def test_multi_limb_matches_bruteforce(self):
        width = 100
        gen = np.random.default_rng(11)
        vals_a = [int(gen.integers(0, 1 << 50)) | (int(gen.integers(0, 1 << 50)) << 50)
                  for _ in range(60)]
        vals_b = [int(gen.integers(0, 1 << 50)) | (int(gen.integers(0, 1 << 50)) << 50)
                  for _ in range(60)]
        counts = chain_length_counts(
            pack_ints(vals_a, width), pack_ints(vals_b, width), width
        )
        brute = np.zeros(width + 1, dtype=np.int64)
        for x, y in zip(vals_a, vals_b):
            for length in _brute_chain_lengths(x, y, width):
                brute[length] += 1
        np.testing.assert_array_equal(counts, brute)

    def test_chain_at_limb_boundary(self):
        width = 128
        # generate at bit 62, propagates through bits 63..66: length 5
        a = pack_ints([(0b11110 << 62) | (1 << 62)], width)
        b = pack_ints([1 << 62], width)
        counts = chain_length_counts(a, b, width)
        assert counts[5] == 1 and counts.sum() == 1

    def test_generate_at_top_bit_counts_when_width_is_limb_multiple(self):
        width = 64
        a = pack_ints([1 << 63], width)
        b = pack_ints([1 << 63], width)
        counts = chain_length_counts(a, b, width)
        assert counts[1] == 1 and counts.sum() == 1


class TestHistogram:
    def test_histogram_sums_to_one(self, rng):
        a = uniform_operands(32, 5000, rng)
        b = uniform_operands(32, 5000, rng)
        hist = chain_length_histogram(a, b, 32)
        assert hist.sum() == pytest.approx(1.0)

    def test_empty_batch_histogram_is_zero(self):
        a = pack_ints([0b1010], 4)
        b = pack_ints([0b0101], 4)
        assert chain_length_histogram(a, b, 4).sum() == 0.0

    def test_uniform_tail_is_geometric(self, rng):
        """Thesis Fig. 6.1: uniform chains decay ~2x per extra bit."""
        a = uniform_operands(32, 200_000, rng)
        b = uniform_operands(32, 200_000, rng)
        hist = chain_length_histogram(a, b, 32)
        for length in range(1, 6):
            assert hist[length] / hist[length + 1] == pytest.approx(2.0, rel=0.15)

    def test_twos_complement_gaussian_is_bimodal(self, rng):
        """Thesis Fig. 6.5: long (near-full-width) chains carry real mass
        for 2's-complement Gaussian operands, unlike uniform ones."""
        n = 100_000
        a = gaussian_operands(32, n, sigma=float(2 ** 16), rng=rng)
        b = gaussian_operands(32, n, sigma=float(2 ** 16), rng=rng)
        hist = chain_length_histogram(a, b, 32)
        long_mass = hist[12:].sum()
        assert long_mass > 0.01
        au = uniform_operands(32, n, rng)
        bu = uniform_operands(32, n, rng)
        hist_u = chain_length_histogram(au, bu, 32)
        assert hist_u[12:].sum() < 0.001


class TestLongest:
    def test_longest_matches_bruteforce(self):
        width = 16
        gen = np.random.default_rng(9)
        vals_a = [int(v) for v in gen.integers(0, 1 << width, 150)]
        vals_b = [int(v) for v in gen.integers(0, 1 << width, 150)]
        got = longest_chain_lengths(
            pack_ints(vals_a, width), pack_ints(vals_b, width), width
        )
        for i, (x, y) in enumerate(zip(vals_a, vals_b)):
            lengths = _brute_chain_lengths(x, y, width)
            assert got[i] == (max(lengths) if lengths else 0), (x, y)

    def test_longest_zero_when_no_generates(self):
        got = longest_chain_lengths(pack_ints([0b1010], 4), pack_ints([0b0101], 4), 4)
        assert got[0] == 0

    def test_average_longest_grows_like_log_width(self, rng):
        """The classic O(log n) expected longest-chain result (thesis Ch. 3)."""
        means = []
        for width in (8, 16, 32, 64):
            a = uniform_operands(width, 30_000, rng)
            b = uniform_operands(width, 30_000, rng)
            means.append(longest_chain_lengths(a, b, width).mean())
        diffs = np.diff(means)
        # doubling the width adds ~1 to the expected longest chain
        assert all(0.5 < d < 1.8 for d in diffs), means
