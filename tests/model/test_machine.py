"""Tests for the gate-level variable-latency machine (repro.model.machine)."""

import random

import pytest

from repro.core import build_vlcsa1, build_vlcsa2, build_vlsa
from repro.model.machine import VariableLatencyMachine
from repro.netlist.circuit import Circuit, NetlistError


@pytest.fixture(scope="module")
def machine():
    return VariableLatencyMachine(build_vlcsa1(20, 5))


class TestProtocol:
    def test_single_add_fast_path(self, machine):
        result, cycles = machine.add(100, 200)
        assert result == 300
        assert cycles == 1

    def test_single_add_stall_path(self, machine):
        a, b = (1 << 15) - 1, 1  # cross-window chain
        result, cycles = machine.add(a, b)
        assert result == a + b
        assert cycles == 2

    def test_stream_all_results_exact(self, machine):
        gen = random.Random(1)
        pairs = [(gen.randrange(1 << 20), gen.randrange(1 << 20)) for _ in range(400)]
        trace = machine.verify_stream(pairs)
        assert len(trace.results) == 400
        assert set(trace.cycles) <= {1, 2}
        assert trace.total_cycles == 400 + sum(trace.stalled)

    def test_stall_rate_matches_detector_rate(self, machine):
        """k=5 on 20 bits stalls a few percent of uniform additions."""
        gen = random.Random(2)
        pairs = [(gen.randrange(1 << 20), gen.randrange(1 << 20)) for _ in range(2000)]
        trace = machine.run(pairs)
        assert 0.005 < trace.stall_rate < 0.10

    def test_empty_stream(self, machine):
        trace = machine.run([])
        assert trace.total_cycles == 0
        assert trace.stall_rate == 0.0
        assert trace.cycles_per_add == 0.0

    def test_wrong_result_raises(self):
        """verify_stream flags a broken design."""

        class Liar:
            pass

        c = Circuit("liar")
        c.add_input_bus("a", 4)
        c.add_input_bus("b", 4)
        zero = c.const0()
        c.set_output_bus("sum", [zero] * 5)
        c.set_output_bus("sum_rec", [zero] * 5)
        c.set_output("err", zero)
        machine = VariableLatencyMachine(c)
        with pytest.raises(AssertionError, match="returned"):
            machine.verify_stream([(1, 2)])


class TestPortContract:
    def test_missing_ports_rejected(self):
        c = Circuit("bad")
        a = c.add_input_bus("a", 4)
        c.add_input_bus("b", 4)
        c.set_output_bus("sum", a)
        with pytest.raises(NetlistError, match="lacks"):
            VariableLatencyMachine(c)

    def test_wrong_inputs_rejected(self):
        c = Circuit("bad2")
        x = c.add_input_bus("x", 4)
        c.set_output_bus("sum", x)
        c.set_output_bus("sum_rec", x)
        c.set_output("err", c.const0())
        with pytest.raises(NetlistError, match="inputs 'a' and 'b'"):
            VariableLatencyMachine(c)

    def test_works_with_all_variable_latency_designs(self):
        gen = random.Random(3)
        pairs = [(gen.randrange(1 << 18), gen.randrange(1 << 18)) for _ in range(150)]
        for circuit in (
            build_vlcsa1(18, 5),
            build_vlcsa2(18, 5),
            build_vlsa(18, 5),
        ):
            trace = VariableLatencyMachine(circuit).verify_stream(pairs)
            assert len(trace.results) == len(pairs), circuit.name


class TestAgainstStatisticalSim:
    def test_machine_matches_behavioral_stall_prediction(self):
        """Gate-level stall count == behavioural ERR0 count on the same
        stream (the conformance property)."""

        from repro.model.behavioral import err0_flags, pack_ints, window_profile

        width, k = 24, 6
        machine = VariableLatencyMachine(build_vlcsa1(width, k))
        gen = random.Random(4)
        pairs = [(gen.randrange(1 << width), gen.randrange(1 << width))
                 for _ in range(600)]
        trace = machine.run(pairs)
        a = pack_ints([p[0] for p in pairs], width)
        b = pack_ints([p[1] for p in pairs], width)
        flags = err0_flags(window_profile(a, b, width, k))
        assert trace.stalled == [bool(f) for f in flags]
