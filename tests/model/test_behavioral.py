"""Tests for the numpy behavioural models (repro.model.behavioral)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.behavioral import (
    add_packed,
    carry_into_bits,
    err0_flags,
    err1_flags,
    extract_field,
    mask_top,
    num_limbs,
    pack_ints,
    scsa1_error_flags,
    scsa2_s1_error_flags,
    shift_right_packed,
    unpack_ints,
    vlcsa2_error_flags,
    vlsa_error_flags,
    window_profile,
)

from tests.conftest import random_pairs


class TestPacking:
    @pytest.mark.parametrize("width", [1, 7, 63, 64, 65, 128, 200, 512])
    def test_pack_unpack_roundtrip(self, width):
        vals = [0, 1, (1 << width) - 1, (1 << width) // 3]
        assert unpack_ints(pack_ints(vals, width), width) == vals

    def test_num_limbs(self):
        assert num_limbs(1) == 1
        assert num_limbs(64) == 1
        assert num_limbs(65) == 2
        assert num_limbs(512) == 8

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            pack_ints([1 << 8], 8)
        with pytest.raises(ValueError, match="fit"):
            pack_ints([-1], 8)

    def test_mask_top_clears_high_bits(self):
        arr = np.full((2, 2), np.uint64(0xFFFFFFFFFFFFFFFF))
        mask_top(arr, 70)
        assert unpack_ints(arr, 70) == [(1 << 70) - 1] * 2


class TestArithmetic:
    @pytest.mark.parametrize("width", [8, 63, 64, 65, 130, 512])
    def test_add_packed_matches_python(self, width):
        pairs = random_pairs(width, 100, seed=width)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        s, cout = add_packed(a, b, width)
        got = unpack_ints(s, width)
        for i, (x, y) in enumerate(pairs):
            total = x + y
            assert got[i] == total % (1 << width)
            assert bool(cout[i]) == (total >> width == 1)

    @pytest.mark.parametrize("width", [16, 64, 100])
    def test_carry_into_bits_identity(self, width):
        pairs = random_pairs(width, 60, seed=width)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        c_mask, cout = carry_into_bits(a, b, width)
        masks = unpack_ints(c_mask, width)
        for i, (x, y) in enumerate(pairs):
            for t in range(width):
                low = (1 << t) - 1
                carry_in = ((x & low) + (y & low)) >> t
                assert (masks[i] >> t) & 1 == carry_in, (x, y, t)
            assert bool(cout[i]) == ((x + y) >> width == 1)

    @pytest.mark.parametrize("lo,size", [(0, 8), (5, 10), (60, 8), (120, 7), (63, 1)])
    def test_extract_field(self, lo, size):
        width = 130
        vals = [v for v, _ in random_pairs(width, 40)]
        arr = pack_ints(vals, width)
        got = extract_field(arr, lo, size)
        for i, v in enumerate(vals):
            assert int(got[i]) == (v >> lo) & ((1 << size) - 1)

    def test_extract_field_size_limits(self):
        arr = pack_ints([0], 64)
        with pytest.raises(ValueError):
            extract_field(arr, 0, 0)
        with pytest.raises(ValueError):
            extract_field(arr, 0, 64)

    @pytest.mark.parametrize("shift", [0, 1, 63, 64, 65, 127, 130, 600])
    def test_shift_right_packed(self, shift):
        width = 192
        vals = [v for v, _ in random_pairs(width, 30)]
        arr = pack_ints(vals, width)
        got = unpack_ints(shift_right_packed(arr, shift), width)
        for i, v in enumerate(vals):
            assert got[i] == v >> shift

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            shift_right_packed(pack_ints([1], 64), -1)


class TestWindowProfile:
    def _profile_reference(self, x, y, width, k, remainder):
        from repro.core.window import plan_windows

        plan = plan_windows(width, k, remainder)
        rows = []
        carry = 0
        for lo, hi in plan.bounds:
            size = hi - lo
            mask = (1 << size) - 1
            aw = (x >> lo) & mask
            bw = (y >> lo) & mask
            g = (aw + bw) >> size
            p = 1 if (aw ^ bw) == mask else 0
            cin = carry
            carry = (aw + bw + carry) >> size
            rows.append((g, p, cin, carry))
        return rows

    @pytest.mark.parametrize("width,k,rem", [
        (24, 5, "lsb"), (24, 5, "msb"), (64, 14, "lsb"), (100, 13, "msb"),
        (128, 16, "lsb"),
    ])
    def test_profile_matches_reference(self, width, k, rem):
        pairs = random_pairs(width, 80, seed=k)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        prof = window_profile(a, b, width, k, rem)
        for i, (x, y) in enumerate(pairs):
            for w, (g, p, cin, cout) in enumerate(
                self._profile_reference(x, y, width, k, rem)
            ):
                assert prof.group_g[i, w] == bool(g), (x, y, w)
                assert prof.group_p[i, w] == bool(p), (x, y, w)
                assert prof.carry_in[i, w] == bool(cin), (x, y, w)
                assert prof.carry_out[i, w] == bool(cout), (x, y, w)


class TestFlagFunctions:
    def _profile(self, width=24, k=5, count=300, seed=2, rem="lsb"):
        pairs = random_pairs(width, count, seed=seed)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        return pairs, window_profile(a, b, width, k, rem)

    def test_scsa1_flags_match_bruteforce(self):
        width, k = 24, 5
        pairs, prof = self._profile(width, k)
        flags = scsa1_error_flags(prof)
        for i, (x, y) in enumerate(pairs):
            from tests.core.test_scsa import _reference_scsa

            wrong = _reference_scsa(x, y, width, k) != x + y
            assert bool(flags[i]) == wrong, (x, y)

    def test_err0_iff_scsa1_error(self):
        _, prof = self._profile()
        np.testing.assert_array_equal(err0_flags(prof), scsa1_error_flags(prof))

    def test_vlcsa2_error_is_intersection(self):
        _, prof = self._profile(rem="msb")
        np.testing.assert_array_equal(
            vlcsa2_error_flags(prof),
            scsa1_error_flags(prof) & scsa2_s1_error_flags(prof),
        )

    def test_single_window_profiles_never_flag(self):
        pairs, prof = self._profile(width=10, k=16, count=50)
        assert not err0_flags(prof).any()
        assert not err1_flags(prof).any()
        assert not scsa1_error_flags(prof).any()

    def test_vlsa_flags_bruteforce(self):
        width, l = 30, 6
        pairs = random_pairs(width, 300, seed=4)
        a = pack_ints([x for x, _ in pairs], width)
        b = pack_ints([y for _, y in pairs], width)
        flags = vlsa_error_flags(a, b, width, l)
        for i, (x, y) in enumerate(pairs):
            p = x ^ y
            g = x & y
            wrong = any(
                (g >> j) & 1 and all((p >> (j + t)) & 1 for t in range(1, l + 1))
                for j in range(0, width - l)
            )
            assert bool(flags[i]) == wrong, (x, y)

    def test_vlsa_flags_width_le_chain_never_fire(self):
        a = pack_ints([1, 2, 3], 8)
        b = pack_ints([3, 2, 1], 8)
        assert not vlsa_error_flags(a, b, 8, 8).any()
        assert not vlsa_error_flags(a, b, 8, 12).any()

    def test_vlsa_multi_limb_boundary_chain(self):
        """A chain straddling the 64-bit limb boundary is detected."""
        width, l = 80, 8
        # generate at bit 58, propagates through bits 59..70
        a = pack_ints([(((1 << 12) - 1) << 59) | (1 << 58)], width)
        b = pack_ints([1 << 58], width)
        assert vlsa_error_flags(a, b, width, l)[0]


@settings(max_examples=50, deadline=None)
@given(
    xs=st.lists(st.integers(min_value=0, max_value=(1 << 90) - 1), min_size=1, max_size=20),
    ys=st.lists(st.integers(min_value=0, max_value=(1 << 90) - 1), min_size=1, max_size=20),
)
def test_add_packed_hypothesis_multilimb(xs, ys):
    n = min(len(xs), len(ys))
    width = 90
    a = pack_ints(xs[:n], width)
    b = pack_ints(ys[:n], width)
    s, cout = add_packed(a, b, width)
    got = unpack_ints(s, width)
    for i in range(n):
        total = xs[i] + ys[i]
        assert got[i] == total % (1 << width)
        assert bool(cout[i]) == (total >> width > 0)
