"""Tests for the benchmark infrastructure (benchmarks/conftest.py)."""


import benchmarks.conftest as bc


def test_reduced_scale_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
    assert not bc.full_scale()
    assert bc.mc_samples(10_000_000, 400_000) == 400_000


def test_full_scale_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_FULL_SCALE", "1")
    assert bc.full_scale()
    assert bc.mc_samples(10_000_000, 400_000) == 10_000_000


def test_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_FULL_SCALE", "0")
    assert not bc.full_scale()
