"""Tests for the standard-cell library model (repro.cells)."""

import pytest

from repro.cells.library import Cell, CellLibrary, UMC65_LIKE, default_library
from repro.cells.logical_effort import (
    LOGICAL_EFFORT,
    optimal_prefix_depth,
    path_delay_estimate,
    stage_delay,
)
from repro.netlist.circuit import GATE_ARITY


def test_every_gate_kind_has_a_cell():
    for kind, arity in GATE_ARITY.items():
        cell = UMC65_LIKE[kind]
        assert cell.num_inputs == arity


def test_every_cell_has_logical_effort():
    for cell in UMC65_LIKE:
        assert cell.name in LOGICAL_EFFORT


def test_delay_increases_with_fanout():
    inv = UMC65_LIKE["INV"]
    assert inv.delay(8) > inv.delay(1) > inv.delay(0)


def test_negative_fanout_rejected():
    with pytest.raises(ValueError, match="fanout"):
        UMC65_LIKE["INV"].delay(-1)


def test_familiar_65nm_orderings():
    lib = UMC65_LIKE
    # inverting simple gates beat their non-inverting forms
    assert lib["NAND2"].intrinsic < lib["AND2"].intrinsic
    assert lib["NOR2"].intrinsic < lib["OR2"].intrinsic
    # XOR and MUX cost roughly two simple-gate delays
    assert lib["XOR2"].intrinsic > lib["NAND2"].intrinsic
    # compound cells beat discrete AND+OR pairs
    assert lib["AOI21"].intrinsic < lib["AND2"].intrinsic + lib["OR2"].intrinsic
    # inverter is the cheapest real cell
    real = [c for c in lib if c.num_inputs > 0]
    assert min(real, key=lambda c: c.area).name == "INV"


def test_constants_are_free():
    assert UMC65_LIKE["CONST0"].area == 0
    assert UMC65_LIKE["CONST1"].delay(5) == 0


def test_gate_equivalents_unit():
    assert UMC65_LIKE.gate_equivalents(UMC65_LIKE["NAND2"].area) == pytest.approx(1.0)


def test_duplicate_cell_rejected():
    cell = Cell("X", 1, 1.0, 0.1, 0.01)
    with pytest.raises(ValueError, match="duplicate"):
        CellLibrary("dup", [cell, cell])


def test_missing_cell_message_names_library():
    with pytest.raises(KeyError, match="umc65-like"):
        UMC65_LIKE["NAND97"]


def test_default_library_is_umc65_like():
    assert default_library() is UMC65_LIKE


def test_library_iteration_and_len():
    assert len(UMC65_LIKE) == len(list(UMC65_LIKE))
    assert "NAND2" in UMC65_LIKE


class TestLogicalEffort:
    def test_stage_delay_grows_with_fanout(self):
        assert stage_delay("NAND2", 4) > stage_delay("NAND2", 1)

    def test_path_delay_sums_stages(self):
        d = path_delay_estimate(["INV", "NAND2"], [1, 1])
        assert d == pytest.approx(stage_delay("INV", 1) + stage_delay("NAND2", 1))

    def test_path_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            path_delay_estimate(["INV"], [1, 2])

    @pytest.mark.parametrize(
        "width,depth", [(1, 0), (2, 1), (3, 2), (16, 4), (17, 5), (512, 9)]
    )
    def test_optimal_prefix_depth(self, width, depth):
        assert optimal_prefix_depth(width) == depth

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            optimal_prefix_depth(0)
