"""Tests for the build-and-measure harness (repro.analysis.compare)."""

import pytest

from repro.analysis.compare import (
    clear_measure_cache,
    measure_adder,
    measure_designware,
    measure_kogge_stone,
    measure_scsa1,
    measure_scsa2,
    measure_vlcsa1,
    measure_vlcsa2,
    measure_vlsa,
    measure_vlsa_speculative,
)


class TestMetricsContents:
    def test_fixed_adder_has_no_path_split(self):
        m = measure_kogge_stone(64)
        assert m.t_spec is None and m.t_detect is None and m.t_recover is None
        assert m.delay > 0 and m.area > 0 and m.gates > 0

    def test_variable_latency_has_path_split(self):
        m = measure_vlcsa1(64, 14)
        assert m.t_spec is not None
        assert m.t_detect is not None
        assert m.t_recover is not None
        assert m.delay == pytest.approx(max(m.t_spec, m.t_detect))

    def test_recovery_slower_than_single_cycle(self):
        for m in (measure_vlcsa1(64, 14), measure_vlcsa2(64, 13), measure_vlsa(64, 17)):
            assert m.t_recover > m.delay * 0.9  # recovery path is the long one

    def test_measurements_are_cached(self):
        assert measure_kogge_stone(32) is measure_kogge_stone(32)

    def test_cache_clear(self):
        m1 = measure_kogge_stone(32)
        clear_measure_cache()
        assert measure_kogge_stone(32) is not m1

    def test_measure_adder_generic(self):
        from repro.adders import build_brent_kung_adder

        m = measure_adder(build_brent_kung_adder, 32)
        assert m.width == 32


class TestThesisShapes:
    """The qualitative claims of Ch. 7, as regression-guarded inequalities."""

    @pytest.mark.parametrize("n,k", [(64, 14), (128, 15), (256, 16), (512, 17)])
    def test_scsa1_faster_and_smaller_than_kogge_stone(self, n, k):
        """Fig. 7.2/7.3: SCSA 1 beats Kogge-Stone on both axes at 0.01%."""
        scsa = measure_scsa1(n, k)
        ks = measure_kogge_stone(n)
        assert scsa.delay < ks.delay
        assert scsa.area < ks.area

    @pytest.mark.parametrize("n", [64, 128, 256, 512])
    def test_scsa1_smaller_than_vlsa_speculative(self, n):
        """Fig. 7.3: window-level speculation beats per-bit speculation on
        area at matched error rate."""
        from repro.analysis.sizing import THESIS_TABLE_7_3

        k, l = THESIS_TABLE_7_3[n]
        assert measure_scsa1(n, k).area <= measure_vlsa_speculative(n, l).area * 1.05

    @pytest.mark.parametrize("n,k", [(64, 10), (256, 12)])
    def test_higher_error_rate_trades_area(self, n, k):
        """Fig. 7.7: the 0.25% design is smaller than the 0.01% design."""
        from repro.analysis.sizing import THESIS_TABLE_7_4

        k_low = THESIS_TABLE_7_4[n][0]
        assert measure_scsa1(n, k).area < measure_scsa1(n, k_low).area

    @pytest.mark.parametrize("n", [64, 256, 512])
    def test_vlcsa1_single_cycle_faster_than_designware(self, n):
        """Fig. 7.8: VLCSA 1 beats the DesignWare adder when speculation
        is correct."""
        from repro.analysis.sizing import THESIS_TABLE_7_4

        k = THESIS_TABLE_7_4[n][0]
        assert measure_vlcsa1(n, k).delay < measure_designware(n).delay

    @pytest.mark.parametrize("n", [256, 512])
    def test_vlcsa1_area_below_kogge_stone_at_large_n(self, n):
        """Fig. 7.5: despite detection+recovery, VLCSA 1 undercuts KS."""
        from repro.analysis.sizing import THESIS_TABLE_7_4

        k = THESIS_TABLE_7_4[n][0]
        assert measure_vlcsa1(n, k).area < measure_kogge_stone(n).area

    def test_vlcsa2_costs_more_area_than_vlcsa1(self):
        """Fig. 7.11 vs 7.9: the second hypothesis and ERR1 cost area."""
        assert measure_vlcsa2(256, 13).area > measure_vlcsa1(256, 16).area * 0.95

    def test_scsa2_spec_no_deeper_than_scsa1(self):
        """Thesis 6.5: S*1 adds no logic depth over S*0."""
        m1 = measure_scsa1(128, 13)
        m2 = measure_scsa2(128, 13)
        assert m2.delay <= m1.delay * 1.15

    def test_vlcsa2_select_style_smaller_than_dual(self):
        dual = measure_vlcsa2(128, 13, style="dual")
        select = measure_vlcsa2(128, 13, style="select")
        assert select.area < dual.area
