"""Tests for the 6-sigma empirical-vs-model comparison helpers."""

import math

import pytest

from repro.analysis.statistics import (
    SIX_SIGMA,
    sigma_deviation,
    six_sigma_comparison,
)


def test_exact_agreement_is_zero_sigma():
    assert sigma_deviation(2500, 10000, 0.25) == 0.0


def test_sigma_matches_hand_computation():
    # observed 0.26 vs model 0.25 over 10^4 trials:
    # se = sqrt(.25*.75/1e4), z = .01/se
    z = sigma_deviation(2600, 10000, 0.25)
    se = math.sqrt(0.25 * 0.75 / 10000)
    assert math.isclose(z, 0.01 / se)
    # Symmetric on the other side.
    assert math.isclose(sigma_deviation(2400, 10000, 0.25), -0.01 / se)


def test_sigma_shrinks_with_more_trials():
    small = sigma_deviation(26, 100, 0.25)
    large = sigma_deviation(2600, 10000, 0.25)
    assert large == pytest.approx(small * 10)  # se scales as 1/sqrt(n)


def test_degenerate_models():
    assert sigma_deviation(0, 1000, 0.0) == 0.0
    assert sigma_deviation(1000, 1000, 1.0) == 0.0
    assert sigma_deviation(1, 1000, 0.0) == math.inf
    assert sigma_deviation(999, 1000, 1.0) == -math.inf


def test_input_validation():
    with pytest.raises(ValueError):
        sigma_deviation(1, 0, 0.5)
    with pytest.raises(ValueError):
        sigma_deviation(-1, 10, 0.5)
    with pytest.raises(ValueError):
        sigma_deviation(11, 10, 0.5)
    with pytest.raises(ValueError):
        sigma_deviation(5, 10, 1.5)


def test_comparison_row_verdicts():
    ok = six_sigma_comparison(2500, 10000, 0.25)
    assert ok["consistent"] is True
    assert ok["sigma"] == 0.0
    assert ok["observed_rate"] == 0.25
    assert ok["threshold"] == SIX_SIGMA

    # 3 sigma of noise is still consistent at a 6-sigma gate ...
    se = math.sqrt(0.25 * 0.75 / 10000)
    drift = six_sigma_comparison(2500 + round(3 * se * 10000), 10000, 0.25)
    assert drift["consistent"] is True

    # ... a gross model error is not.
    bad = six_sigma_comparison(3000, 10000, 0.25)
    assert bad["consistent"] is False
    assert bad["sigma"] > SIX_SIGMA


def test_comparison_custom_threshold():
    row = six_sigma_comparison(2600, 10000, 0.25, threshold=2.0)
    assert row["threshold"] == 2.0
    assert row["consistent"] is False  # ~2.3 sigma fails a 2-sigma gate
