"""Tests for Pareto-frontier analysis (repro.analysis.pareto)."""

import pytest

from repro.analysis.pareto import (
    DesignPoint,
    design_space,
    dominates,
    knee_point,
    pareto_front,
)


def _pt(k, e, d, a):
    return DesignPoint(window_size=k, error_rate=e, delay=d, area=a)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 1, 1), (1, 1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1, 2), (1, 2, 3))


class TestParetoFront:
    def test_dominated_points_removed(self):
        pts = [_pt(1, 0.1, 1.0, 100), _pt(2, 0.1, 1.0, 200), _pt(3, 0.2, 2.0, 300)]
        front = pareto_front(pts)
        assert _pt(1, 0.1, 1.0, 100) in front
        assert _pt(2, 0.1, 1.0, 200) not in front
        assert _pt(3, 0.2, 2.0, 300) not in front

    def test_tradeoff_points_kept(self):
        pts = [_pt(1, 0.1, 1.0, 300), _pt(2, 0.01, 2.0, 100)]
        assert len(pareto_front(pts)) == 2

    def test_sorted_by_error_descending(self):
        pts = [_pt(1, 0.001, 3.0, 100), _pt(2, 0.1, 1.0, 50)]
        front = pareto_front(pts)
        errs = [p.error_rate for p in front]
        assert errs == sorted(errs, reverse=True)

    def test_empty(self):
        assert pareto_front([]) == []


class TestDesignSpace:
    def test_sweep_produces_monotone_error(self):
        points = design_space(64, window_sizes=range(6, 16, 2))
        errs = [p.error_rate for p in points]
        assert errs == sorted(errs, reverse=True)

    def test_frontier_of_real_sweep_nonempty(self):
        points = design_space(64, window_sizes=range(6, 18, 3))
        front = pareto_front(points)
        assert front
        # the frontier always includes the lowest-error point's dominator set
        best_err = min(p.error_rate for p in points)
        assert any(p.error_rate == best_err for p in front)

    def test_scsa_family(self):
        points = design_space(64, window_sizes=[8, 12], family="scsa1")
        assert len(points) == 2
        assert all(p.area > 0 for p in points)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="family"):
            design_space(64, window_sizes=[8], family="abacus")


class TestKnee:
    def test_knee_is_on_front(self):
        points = design_space(64, window_sizes=range(6, 18, 2))
        front = pareto_front(points)
        assert knee_point(front) in front

    def test_single_point(self):
        p = _pt(1, 0.1, 1.0, 100)
        assert knee_point([p]) == p

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point([])
