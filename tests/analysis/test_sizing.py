"""Tests for the design-parameter solvers (thesis Tables 7.3-7.5)."""

import pytest

from repro.analysis.sizing import (
    THESIS_TABLE_7_3,
    THESIS_TABLE_7_4,
    THESIS_TABLE_7_5,
    THESIS_WIDTHS,
    scsa_window_size_for,
    vlcsa2_window_size_for,
    vlsa_chain_length_for,
)


class TestTable74:
    """The analytic model must reproduce Table 7.4 exactly."""

    @pytest.mark.parametrize("width", THESIS_WIDTHS)
    def test_window_size_at_0_01_percent(self, width):
        assert scsa_window_size_for(width, 1e-4) == THESIS_TABLE_7_4[width][0]

    @pytest.mark.parametrize("width", THESIS_WIDTHS)
    def test_window_size_at_0_25_percent(self, width):
        assert scsa_window_size_for(width, 25e-4) == THESIS_TABLE_7_4[width][1]


class TestTable73:
    @pytest.mark.parametrize("width", THESIS_WIDTHS)
    def test_scsa_column_matches(self, width):
        assert scsa_window_size_for(width, 1e-4) == THESIS_TABLE_7_3[width][0]

    @pytest.mark.parametrize("width", THESIS_WIDTHS)
    def test_vlsa_column_within_one(self, width):
        """Our exact chain model lands within 1 of the thesis' l values
        (their model/sim hybrid is slightly more conservative at large n —
        recorded in EXPERIMENTS.md)."""
        got = vlsa_chain_length_for(width, 1e-4)
        assert abs(got - THESIS_TABLE_7_3[width][1]) <= 1

    @pytest.mark.parametrize("width", THESIS_WIDTHS)
    def test_scsa_window_smaller_than_vlsa_chain(self, width):
        assert (
            scsa_window_size_for(width, 1e-4)
            < vlsa_chain_length_for(width, 1e-4)
        )


class TestTable75:
    @pytest.mark.parametrize("width", [64, 256])
    def test_vlcsa2_window_at_0_01_percent(self, width):
        got = vlcsa2_window_size_for(width, 1e-4, samples=150_000)
        assert abs(got - THESIS_TABLE_7_5[width][0]) <= 1

    def test_vlcsa2_window_independent_of_width(self):
        """Table 7.5's striking feature: the same window size works at
        every width, because the Gaussian active region (set by sigma) is
        what the error rate sees."""
        sizes = {
            vlcsa2_window_size_for(n, 1e-4, samples=120_000)
            for n in (64, 128, 256)
        }
        assert len(sizes) <= 2  # identical up to MC wiggle

    def test_smaller_target_needs_bigger_window(self):
        k_loose = vlcsa2_window_size_for(64, 25e-4, samples=120_000)
        k_tight = vlcsa2_window_size_for(64, 1e-4, samples=120_000)
        assert k_loose < k_tight


class TestSolverBehaviour:
    def test_window_grows_with_tighter_target(self):
        assert scsa_window_size_for(256, 1e-6) > scsa_window_size_for(256, 1e-3)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            scsa_window_size_for(64, 0.0)
        with pytest.raises(ValueError):
            vlsa_chain_length_for(64, -1.0)
        with pytest.raises(ValueError):
            vlcsa2_window_size_for(64, 0.0)

    def test_achievability_cap_at_width(self):
        # Absurdly tight target: solver caps at a single window (exact).
        assert scsa_window_size_for(16, 1e-30) == 16
