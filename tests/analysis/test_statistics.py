"""Tests for the Monte Carlo statistics helpers (repro.analysis.statistics)."""

import pytest

from repro.analysis.statistics import (
    rates_compatible,
    samples_for_rate,
    wilson_interval,
)


class TestWilson:
    def test_point_estimate(self):
        est = wilson_interval(25, 100)
        assert est.point == pytest.approx(0.25)
        assert est.low < 0.25 < est.high

    def test_interval_narrows_with_samples(self):
        wide = wilson_interval(25, 100)
        narrow = wilson_interval(2500, 10_000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_zero_successes_has_nonzero_upper_bound(self):
        """The property the normal approximation lacks at tiny rates."""
        est = wilson_interval(0, 100_000)
        assert est.low == 0.0
        assert 0 < est.high < 1e-4

    def test_all_successes(self):
        est = wilson_interval(50, 50)
        assert est.high == 1.0
        assert est.low > 0.9

    def test_bounds_clamped(self):
        est = wilson_interval(1, 2)
        assert 0.0 <= est.low <= est.high <= 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_contains(self):
        est = wilson_interval(100, 1000)
        assert est.contains(0.1)
        assert not est.contains(0.5)


class TestCompatibility:
    def test_compatible_rate(self):
        # a fair-coin sample is compatible with p = 0.5
        assert rates_compatible(5020, 10_000, 0.5)

    def test_incompatible_rate(self):
        assert not rates_compatible(5020, 10_000, 0.25)

    def test_thesis_gaussian_rate(self):
        """250 400 hits out of a million is compatible with 25.01%."""
        assert rates_compatible(250_400, 1_000_000, 0.2501)


class TestPlanning:
    def test_tiny_rates_need_many_samples(self):
        # pinning 0.01% within 10% at 95% needs millions of samples —
        # the reason the thesis ran 10^7
        needed = samples_for_rate(1e-4, 0.1)
        assert 3_000_000 < needed < 5_000_000

    def test_looser_tolerance_needs_fewer(self):
        assert samples_for_rate(1e-4, 0.5) < samples_for_rate(1e-4, 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            samples_for_rate(0.0)
        with pytest.raises(ValueError):
            samples_for_rate(0.1, 0.0)
