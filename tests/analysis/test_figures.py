"""Tests for the figure-data exporter (repro.analysis.figures)."""

import json

import pytest

from repro.analysis.figures import FIGURES, export_figures, fig_3_5


class TestFigureData:
    def test_registry_covers_all_evaluation_figures(self):
        assert set(FIGURES) == {
            "fig3_5", "fig6_x", "fig7_1", "fig7_2_7_3", "fig7_4_7_5",
            "fig7_6_to_7_11",
        }

    def test_fig_3_5_shape(self):
        data = fig_3_5()
        assert data["figure"] == "3.5"
        assert len(data["x"]) == len(data["series"]["n=64"])
        assert all(len(v) == len(data["x"]) for v in data["series"].values())
        # monotone decreasing in k
        for series in data["series"].values():
            assert series == sorted(series, reverse=True)

    @pytest.mark.parametrize("name", ["fig7_2_7_3", "fig7_4_7_5"])
    def test_delay_area_figures_have_consistent_lengths(self, name):
        data = FIGURES[name](0)
        for series in data["series"].values():
            assert len(series) == len(data["x"])
        assert "paper" in data and data["paper"]

    def test_fig6_histograms_sum_to_one(self):
        data = FIGURES["fig6_x"](20_000)
        for name, series in data["series"].items():
            assert sum(series) == pytest.approx(1.0, abs=1e-6), name


class TestExport:
    def test_export_writes_valid_json(self, tmp_path):
        written = export_figures(str(tmp_path), names=["fig3_5"])
        assert len(written) == 1
        data = json.loads(open(written[0]).read())
        assert data["figure"] == "3.5"

    def test_export_all_default_names(self, tmp_path):
        written = export_figures(str(tmp_path), names=["fig3_5", "fig7_2_7_3"])
        assert len(written) == 2

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figure"):
            export_figures(str(tmp_path), names=["fig9_9"])
