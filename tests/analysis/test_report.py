"""Tests for report formatting (repro.analysis.report)."""

import pytest

from repro.analysis.report import format_series, format_table, percent, ratio


class TestRatio:
    def test_basic(self):
        assert ratio(90, 100) == pytest.approx(-0.10)
        assert ratio(110, 100) == pytest.approx(0.10)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ZeroDivisionError):
            ratio(1, 0)


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1], ["bcd", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert lines[2].index("1") == lines[3].index("2")

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 7.4")
        assert out.splitlines()[0] == "Table 7.4"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row length"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000012], [1234567.0], [0.5], [0]])
        assert "1.200e-05" in out
        assert "1.235e+06" in out
        assert "0.5" in out


class TestFormatSeries:
    def test_series_columns(self):
        out = format_series(
            "n", [64, 128], [("ks", [1.0, 2.0]), ("scsa", [0.8, 1.1])],
            title="Fig 7.2",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 7.2"
        assert "ks" in lines[1] and "scsa" in lines[1]
        assert "64" in lines[3]


def test_percent():
    assert percent(0.2501) == "25.01%"
    assert percent(1e-4, digits=2) == "0.01%"
