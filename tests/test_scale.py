"""Thesis-scale sanity: the designs behave at the evaluation's largest
width (n = 512), not just at test-friendly sizes."""

import random

import pytest

from repro.analysis.sizing import THESIS_TABLE_7_3, THESIS_TABLE_7_5
from repro.netlist.simulate import simulate_batch
from repro.netlist.timing import analyze_timing
from repro.netlist.validate import check_circuit, live_gate_fraction


WIDTH = 512


@pytest.fixture(scope="module")
def operands():
    gen = random.Random(512)
    pairs = [(gen.randrange(1 << WIDTH), gen.randrange(1 << WIDTH))
             for _ in range(24)]
    pairs.append(((1 << WIDTH) - 1, 1))  # full-length carry chain
    pairs.append((0, 0))
    return pairs


def _exercise(circuit, pairs, exact_bus, spec_bus=None, err_bus=None):
    check_circuit(circuit)
    assert live_gate_fraction(circuit) == pytest.approx(1.0)
    out = simulate_batch(
        circuit, {"a": [a for a, _ in pairs], "b": [b for _, b in pairs]}
    )
    for (a, b), value in zip(pairs, out[exact_bus]):
        assert value == a + b
    if spec_bus and err_bus:
        for (a, b), spec, err in zip(pairs, out[spec_bus], out[err_bus]):
            if not err:
                assert spec == a + b


def test_kogge_stone_512(operands):
    from repro.adders import build_kogge_stone_adder

    c = build_kogge_stone_adder(WIDTH)
    _exercise(c, operands, "sum")
    assert analyze_timing(c).critical_delay > 0


def test_vlcsa1_512(operands):
    from repro.core import build_vlcsa1

    k = THESIS_TABLE_7_3[WIDTH][0]
    c = build_vlcsa1(WIDTH, k)
    _exercise(c, operands, "sum_rec", "sum", "err")
    report = analyze_timing(c)
    # the full-length chain case must stall
    out = simulate_batch(c, {"a": [(1 << WIDTH) - 1], "b": [1]})
    assert out["err"][0] == 1
    assert report.bus_delay("sum_rec") > report.bus_delay("sum")


def test_vlcsa2_512(operands):
    from repro.core import build_vlcsa2

    k = THESIS_TABLE_7_5[WIDTH][0]
    c = build_vlcsa2(WIDTH, k)
    _exercise(c, operands, "sum_rec", "sum", "err")


def test_vlsa_512(operands):
    from repro.core import build_vlsa

    l = THESIS_TABLE_7_3[WIDTH][1]
    c = build_vlsa(WIDTH, l)
    _exercise(c, operands, "sum_rec", "sum", "err")


def test_behavioral_at_512_matches_gates(operands):
    """The Monte Carlo engine agrees with gate simulation at full width."""
    from repro.core import build_vlcsa1
    from repro.model.behavioral import err0_flags, pack_ints, window_profile

    k = THESIS_TABLE_7_3[WIDTH][0]
    c = build_vlcsa1(WIDTH, k)
    av = [a for a, _ in operands]
    bv = [b for _, b in operands]
    out = simulate_batch(c, {"a": av, "b": bv})
    flags = err0_flags(
        window_profile(pack_ints(av, WIDTH), pack_ints(bv, WIDTH), WIDTH, k)
    )
    assert out["err"] == [int(f) for f in flags]
