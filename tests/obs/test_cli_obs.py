"""CLI surface of the observability subsystem: stats, --trace, provenance."""

import json

import pytest

from repro.cli import main
from repro.obs import spans as obs
from repro.obs.provenance import REPORT_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def _obs_left_disabled():
    """Every CLI invocation must leave the global switch off."""
    yield
    assert not obs.is_enabled()


class TestStatsCommand:
    def test_latency_histogram_mean_matches_model(self, tmp_path, capsys):
        """Acceptance: the VLCSA 2 latency-cycle histogram mean matches the
        Eq. 5.2 expectation within 1e-3 on a seeded 1e5-sample run."""
        out = tmp_path / "stats.json"
        assert main(
            ["stats", "32", "--window", "8", "--samples", "100000",
             "--no-cache", "--json", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        rows = {row["architecture"]: row for row in doc["rows"]}
        for design in ("vlcsa1", "vlcsa2"):
            row = rows[design]
            assert row["latency_cycles"]["count"] == 100_000
            assert abs(
                row["mean_cycles_per_add"] - row["expected_cycles_per_add"]
            ) < 1e-3
        # vlcsa1 stalls whenever the window speculation misses
        assert rows["vlcsa1"]["stall_rate"] > 0
        # the ERR0 & ERR1 stall rate of VLCSA 2 is at most VLCSA 1's
        assert rows["vlcsa2"]["stall_rate"] <= rows["vlcsa1"]["stall_rate"]
        text = capsys.readouterr().out
        assert "latency cycles" in text
        assert "Eq. 5.2" in text

    def test_histograms_in_metrics_report(self, tmp_path):
        out = tmp_path / "stats.json"
        assert main(
            ["stats", "16", "--window", "4", "--samples", "20000",
             "--no-cache", "--json", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        hists = doc["metrics"]["histograms"]
        assert "vlcsa1.latency_cycles" in hists
        assert "vlcsa2.latency_cycles" in hists

    def test_deterministic_across_runs(self, tmp_path):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main(
                ["--seed", "7", "stats", "16", "--window", "4",
                 "--samples", "20000", "--no-cache", "--json", str(out)]
            ) == 0
            outs.append(json.loads(out.read_text())["rows"])
        assert outs[0] == outs[1]


class TestTraceFlag:
    def test_sim_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        """Acceptance: repro sim --trace out.json produces a Chrome trace
        whose events carry ph/ts/dur/pid/tid and are ts-monotonic."""
        trace = tmp_path / "out.json"
        assert main(
            ["sim", "vlcsa1", "--widths", "16", "--vectors", "32",
             "--repeat", "1", "--trace", str(trace)]
        ) == 0
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        names = {e["name"] for e in events}
        assert "repro.sim" in names
        # compile.codegen is absent when the process-wide kernel cache is
        # already warm from an earlier test; the sim spans always fire.
        assert {"sim.batch", "sim.exec"} <= names
        err = capsys.readouterr().err
        assert "trace event(s)" in err
        assert "repro.sim" in err  # the text flamegraph

    def test_stats_trace_spans_cover_engine_phases(self, tmp_path):
        trace = tmp_path / "t.json"
        assert main(
            ["stats", "16", "--window", "4", "--samples", "20000",
             "--no-cache", "--trace", str(trace)]
        ) == 0
        names = {
            e["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
        }
        assert {"repro.stats", "simulate", "elaborate"} <= names

    def test_lint_trace_has_per_rule_spans(self, tmp_path):
        trace = tmp_path / "t.json"
        assert main(
            ["lint", "vlcsa1", "--widths", "16", "--no-cache",
             "--trace", str(trace)]
        ) == 0
        names = {
            e["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
        }
        assert "lint.run" in names
        assert any(n.startswith("lint.S") for n in names)
        assert any(n.startswith("lint.F") for n in names)

    def test_untraced_run_records_nothing(self, tmp_path):
        obs.reset()
        assert main(
            ["sim", "vlcsa1", "--widths", "16", "--vectors", "16",
             "--repeat", "1"]
        ) == 0
        assert obs.global_collector().spans == []


class TestProvenance:
    def test_sim_report_carries_provenance(self, tmp_path):
        out = tmp_path / "sim.json"
        assert main(
            ["sim", "vlcsa1", "--widths", "16", "--vectors", "32",
             "--repeat", "1", "--seed", "5", "--json", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        prov = doc["provenance"]
        assert prov["seed"] == 5
        assert prov["python_version"]
        assert prov["numpy_version"]
        assert prov["platform"]

    def test_engine_errors_report_carries_provenance(self, tmp_path):
        out = tmp_path / "e.json"
        assert main(
            ["engine", "errors", "16", "--window", "4", "--samples", "20000",
             "--no-cache", "--no-design", "--json", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert doc["provenance"]["seed"] == doc["seed"]

    def test_lint_json_carries_provenance(self, capsys):
        assert main(
            ["lint", "vlcsa1", "--widths", "16", "--no-cache",
             "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert "git_rev" in doc["provenance"]
