"""Unit tests for the power-of-two-bucket histogram (repro.obs.hist)."""

import pytest

from repro.obs.hist import Histogram


class TestBuckets:
    def test_bucket_edges_are_powers_of_two(self):
        # bucket e covers [2**e, 2**(e+1))
        assert Histogram.bucket_of(1) == 0
        assert Histogram.bucket_of(1.5) == 0
        assert Histogram.bucket_of(2) == 1
        assert Histogram.bucket_of(3.999) == 1
        assert Histogram.bucket_of(4) == 2
        assert Histogram.bucket_of(0.5) == -1
        assert Histogram.bucket_of(1024) == 10

    def test_nonpositive_goes_to_underflow(self):
        assert Histogram.bucket_of(0) is None
        assert Histogram.bucket_of(-3) is None
        h = Histogram()
        h.record(0)
        h.record(-1)
        assert h.zero == 2
        assert h.count == 2

    def test_record_with_count(self):
        h = Histogram()
        h.record(3, count=10)
        h.record(5, count=0)  # no-op
        h.record(5, count=-2)  # no-op
        assert h.count == 10
        assert h.total == 30.0
        assert h.buckets == {1: 10}

    def test_items_ascending_with_underflow_first(self):
        h = Histogram()
        h.record(0, 2)
        h.record(10, 3)
        h.record(1, 1)
        items = list(h.items())
        assert items[0] == (0.0, 0.0, 2)
        assert items[1] == (1.0, 2.0, 1)
        assert items[2] == (8.0, 16.0, 3)


class TestExactStats:
    def test_mean_is_exact_despite_coarse_buckets(self):
        h = Histogram()
        h.record(1, 99_380)
        h.record(2, 620)
        assert h.mean == pytest.approx(1.0062, abs=1e-12)

    def test_min_max_tracked(self):
        h = Histogram()
        for v in (7.0, 0.25, 100.0):
            h.record(v)
        assert h.min == 0.25
        assert h.max == 100.0


class TestZeroSamples:
    """Satellite (b): zero-sample guards return None, never raise."""

    def test_empty_mean_is_none(self):
        assert Histogram().mean is None

    def test_empty_percentile_is_none(self):
        h = Histogram()
        assert h.percentile(0.5) is None
        assert h.percentile(0.0) is None
        assert h.percentile(1.0) is None

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)
        with pytest.raises(ValueError):
            Histogram().percentile(-0.1)

    def test_empty_format_lines(self):
        assert Histogram().format_lines("empty") == ["empty: (no samples)"]


class TestPercentile:
    def test_percentile_upper_bound_clamped_to_max(self):
        h = Histogram()
        h.record(1, 99)
        h.record(3, 1)
        # p50 falls in the [1, 2) bucket -> upper edge 2
        assert h.percentile(0.5) == 2.0
        # p100 falls in [2, 4) whose upper edge 4 clamps to the observed max
        assert h.percentile(1.0) == 3

    def test_percentile_underflow_bucket_reports_zero(self):
        h = Histogram()
        h.record(0, 10)
        h.record(5, 1)
        assert h.percentile(0.5) == 0.0


class TestMerge:
    def test_merge_is_exact_and_commutative(self):
        a, b = Histogram(), Histogram()
        a.record(1, 5)
        a.record(100, 2)
        b.record(1, 3)
        b.record(0, 1)
        b.record(7, 4)
        ab = Histogram().merge(a).merge(b)
        ba = Histogram().merge(b).merge(a)
        for h in (ab, ba):
            assert h.count == 15
            assert h.total == a.total + b.total
            assert h.min == 0.0
            assert h.max == 100.0
        assert ab.buckets == ba.buckets
        assert ab.zero == ba.zero == 1

    def test_merge_empty_is_identity(self):
        h = Histogram()
        h.record(2, 3)
        before = h.to_dict()
        h.merge(Histogram())
        assert h.to_dict() == before


class TestSerialization:
    def test_to_from_dict_round_trip(self):
        h = Histogram()
        h.record(0, 2)
        h.record(1.5, 7)
        h.record(9, 1)
        back = Histogram.from_dict(h.to_dict())
        assert back.to_dict() == h.to_dict()
        assert back.mean == h.mean
        assert back.percentile(0.9) == h.percentile(0.9)

    def test_format_lines_render_bars(self):
        h = Histogram()
        h.record(1, 90)
        h.record(2, 10)
        lines = h.format_lines("latency")
        assert lines[0].startswith("latency: count=100")
        assert any("#" in line for line in lines[1:])
