"""Per-worker metric collection through the multiprocessing runner."""

import multiprocessing

import pytest

from repro.engine import EngineMetrics, MonteCarloErrorJob, run_job
from repro.obs import spans as obs


def _job(samples=60_000):
    return MonteCarloErrorJob(
        width=32,
        window=6,
        samples=samples,
        chunk_size=2**14,
        counters=("scsa1",),
    )


class TestWorkerMetrics:
    def test_workers_ship_timer_split_back(self):
        """Satellite (a) end to end: the parallel run must report worker
        busy time ('chunks' timer), which the counter-only merge lost."""
        metrics = EngineMetrics()
        run_job(_job(), workers=2, metrics=metrics)
        assert metrics.timers["simulate"] > 0
        assert metrics.timers["chunks"] > 0  # merged worker busy time
        assert metrics.counters["chunks"] == 4
        assert metrics.counters["samples"] == 60_000
        details = metrics.worker_details
        assert set(details) <= {0, 1} and details
        total_chunks = sum(
            d["counters"].get("chunks", 0) for d in details.values()
        )
        assert total_chunks == 4
        merged_busy = sum(
            d["timers_s"].get("chunks", 0.0) for d in details.values()
        )
        assert metrics.timers["chunks"] == pytest.approx(merged_busy, abs=1e-3)

    def test_parallel_still_bit_identical_to_serial(self):
        serial = run_job(_job(), workers=0).aggregate
        parallel = run_job(_job(), workers=2).aggregate
        assert serial.samples == parallel.samples
        assert serial.scsa1_errors == parallel.scsa1_errors

    def test_json_report_includes_workers_section(self):
        import json

        metrics = EngineMetrics()
        run_job(_job(), workers=2, metrics=metrics)
        blob = json.loads(metrics.to_json())
        assert "workers" in blob
        for detail in blob["workers"].values():
            assert set(detail) >= {"counters", "timers_s"}

    def test_serial_run_has_no_workers_section(self):
        metrics = EngineMetrics()
        run_job(_job(), workers=0, metrics=metrics)
        assert metrics.worker_details == {}
        assert "workers" not in metrics.to_dict()

    def test_worker_spans_reach_parent_collector_when_traced(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        obs.reset()
        obs.enable()
        try:
            run_job(_job(), workers=2)
            spans = obs.global_collector().spans
            worker_spans = [s for s in spans if s.name == "worker.task"]
            assert worker_spans
            import os

            assert all(s.pid != os.getpid() for s in worker_spans)
        finally:
            obs.disable()
            obs.reset()
