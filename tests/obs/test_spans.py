"""Span nesting, the global switch, and cross-process collection."""

import concurrent.futures
import multiprocessing
import os
import threading

import pytest

from repro.obs import spans as obs
from repro.obs.collector import Collector


@pytest.fixture
def traced():
    """Enable recording on a clean collector; always restore disabled."""
    obs.reset()
    obs.enable()
    try:
        yield obs.global_collector()
    finally:
        obs.disable()
        obs.reset()


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_disabled_span_records_nothing(self):
        obs.reset()
        with obs.span("phantom", detail=1) as s:
            s.set(more=2)
        obs.add("phantom_counter")
        obs.record("phantom_hist", 1.0)
        col = obs.global_collector()
        assert col.spans == []
        assert col.counters == {}
        assert col.histograms == {}

    def test_disabled_span_is_shared_noop(self):
        # the disabled path hands back one shared object — no allocation
        assert obs.span("a") is obs.span("b")


class TestNesting:
    def test_parent_child_links_and_paths(self, traced):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner2"):
                pass
        spans = {s.name: s for s in traced.spans}
        assert spans["outer"].parent_id == 0
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner2"].parent_id == spans["outer"].span_id
        assert spans["inner"].path == ("outer", "inner")
        assert spans["outer"].path == ("outer",)

    def test_span_ids_unique(self, traced):
        for _ in range(5):
            with obs.span("x"):
                pass
        ids = [s.span_id for s in traced.spans]
        assert len(set(ids)) == len(ids)

    def test_durations_nest(self, traced):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in traced.spans}
        assert spans["inner"].dur_us <= spans["outer"].dur_us
        assert spans["inner"].ts_us >= spans["outer"].ts_us

    def test_attrs_via_kwargs_and_set(self, traced):
        with obs.span("job", width=64) as s:
            s.set(vectors=1024)
        (span,) = traced.spans
        assert span.args == {"width": 64, "vectors": 1024}

    def test_exception_still_records_and_pops(self, traced):
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError("boom")
        assert [s.name for s in traced.spans] == ["inner", "outer"]
        assert obs.current_span() is None

    def test_counters_and_histograms_record_when_enabled(self, traced):
        obs.add("events", 3)
        obs.record("sizes", 8, count=2)
        assert traced.counters == {"events": 3}
        assert traced.histograms["sizes"].count == 2


class TestThreads:
    def test_each_thread_gets_its_own_stack(self, traced):
        """Sibling threads must not see each other's open spans as parents."""
        barrier = threading.Barrier(2)

        def work(tag):
            with obs.span(tag):
                barrier.wait(timeout=10)
                with obs.span(f"{tag}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in traced.spans}
        for i in range(2):
            child, parent = spans[f"t{i}.child"], spans[f"t{i}"]
            assert child.parent_id == parent.span_id
            assert child.path == (f"t{i}", f"t{i}.child")
            assert child.tid == parent.tid


def _pool_worker(tag):
    """Top-level (picklable) worker: records a nested span pair and ships
    its collector back, the same protocol the engine runner uses."""
    obs.reset()
    obs.enable()
    try:
        with obs.span("worker", tag=tag):
            with obs.span("step"):
                pass
        return obs.global_collector()
    finally:
        obs.disable()


class TestProcesses:
    def test_span_nesting_under_process_pool_workers(self):
        """Satellite (d): spans collected in pool workers merge into one
        collector with correct nesting and per-process pids."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        merged = Collector()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=ctx
        ) as pool:
            for collector in pool.map(_pool_worker, ["a", "b"]):
                merged.merge(collector)
        assert len(merged.spans) == 4
        by_pid = {}
        for s in merged.spans:
            by_pid.setdefault(s.pid, []).append(s)
        assert os.getpid() not in by_pid
        for pid, spans in by_pid.items():
            named = {s.name: s for s in spans}
            assert named["step"].parent_id == named["worker"].span_id
            assert named["step"].path == ("worker", "step")

    def test_reset_clears_forked_parent_spans(self, traced):
        """A worker's reset() must drop spans inherited through fork."""
        with obs.span("parent-side"):
            pass
        assert traced.spans
        obs.reset()
        assert traced.spans == []
