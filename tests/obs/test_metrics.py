"""EngineMetrics facade: full merge semantics and zero-division guards."""

import json

import pytest

from repro.engine.metrics import EngineMetrics
from repro.obs.collector import Collector


class TestFacadeCompatibility:
    """The pre-obs surface the rest of the engine (and its tests) uses."""

    def test_counters_and_timers_are_live_dicts(self):
        m = EngineMetrics()
        m.add("chunks", 2)
        m.counters["manual"] = 5
        assert m.counters == {"chunks": 2, "manual": 5}
        with m.phase("simulate"):
            pass
        assert m.timers["simulate"] >= 0

    def test_to_dict_keeps_legacy_keys(self):
        m = EngineMetrics()
        m.add("samples", 10)
        with m.phase("simulate"):
            pass
        blob = json.loads(m.to_json())
        assert set(blob) >= {"counters", "timers_s", "throughput_samples_per_s"}
        # histograms/workers appear only when there is data for them
        assert "histograms" not in blob
        assert "workers" not in blob

    def test_phase_is_reentrant_by_sum(self):
        m = EngineMetrics()
        with m.phase("p"):
            pass
        first = m.timers["p"]
        with m.phase("p"):
            pass
        assert m.timers["p"] > first


class TestThroughputGuards:
    """Satellite (b): zero samples / zero elapsed return None, never raise."""

    def test_empty_metrics(self):
        assert EngineMetrics().throughput() is None

    def test_samples_without_timer(self):
        m = EngineMetrics()
        m.add("samples", 100)
        assert m.throughput() is None

    def test_timer_without_samples(self):
        m = EngineMetrics()
        m.timers["simulate"] = 1.0
        assert m.throughput() is None

    def test_zero_elapsed(self):
        m = EngineMetrics()
        m.add("samples", 100)
        m.timers["simulate"] = 0.0
        assert m.throughput() is None

    def test_normal_case(self):
        m = EngineMetrics()
        m.add("samples", 100)
        m.timers["simulate"] = 2.0
        assert m.throughput() == pytest.approx(50.0)

    def test_to_dict_never_raises_on_empty(self):
        blob = EngineMetrics().to_dict()
        assert blob["throughput_samples_per_s"] is None


class TestMerge:
    """Satellite (a): merging must carry timers (and histograms), not just
    counters — the bug the old worker merge had."""

    def test_merge_timers(self):
        m = EngineMetrics()
        m.timers["simulate"] = 1.0
        m.merge_timers({"simulate": 0.5, "compile": 0.25})
        assert m.timers == {"simulate": 1.5, "compile": 0.25}

    def test_full_merge_carries_everything(self):
        a, b = EngineMetrics(), EngineMetrics()
        a.add("chunks", 1)
        a.timers["simulate"] = 1.0
        a.record("h", 1, 10)
        b.add("chunks", 2)
        b.timers["simulate"] = 2.0
        b.timers["compile"] = 0.5
        b.record("h", 2, 5)
        b.worker_details[1] = {"counters": {}, "timers_s": {}}
        a.merge(b)
        assert a.counters["chunks"] == 3
        assert a.timers["simulate"] == pytest.approx(3.0)
        assert a.timers["compile"] == pytest.approx(0.5)
        assert a.histograms["h"].count == 15
        assert a.histograms["h"].total == pytest.approx(20.0)
        assert 1 in a.worker_details

    def test_absorb_worker_merges_timers_not_counters(self):
        """The parent counts chunks as it absorbs results; worker counters
        stay in the per-rank detail so nothing double-counts."""
        m = EngineMetrics()
        m.add("chunks", 8)  # parent-side count of absorbed chunks
        worker = Collector()
        worker.add("chunks", 8)
        worker.add_time("chunks", 1.5)
        worker.record("h", 4, 2)
        m.absorb_worker(0, worker)
        assert m.counters["chunks"] == 8  # not 16
        assert m.timers["chunks"] == pytest.approx(1.5)
        assert m.histograms["h"].count == 2
        assert m.worker_details[0]["counters"]["chunks"] == 8

    def test_to_dict_workers_section(self):
        m = EngineMetrics()
        worker = Collector()
        worker.add("chunks", 3)
        worker.add_time("chunks", 0.25)
        m.absorb_worker(1, worker)
        blob = m.to_dict()
        assert blob["workers"]["1"]["counters"]["chunks"] == 3
        assert blob["workers"]["1"]["timers_s"]["chunks"] == pytest.approx(0.25)

    def test_record_surfaces_in_report_and_lines(self):
        m = EngineMetrics()
        m.record("latency", 1, 90)
        m.record("latency", 2, 10)
        blob = m.to_dict()
        assert blob["histograms"]["latency"]["count"] == 100
        assert any("latency" in line for line in m.format_lines())
