"""The shared provenance helper every --json report goes through."""

import platform

from repro.obs.provenance import (
    REPORT_SCHEMA_VERSION,
    git_revision,
    provenance_block,
    with_provenance,
)


class TestProvenanceBlock:
    def test_required_fields_present(self):
        block = provenance_block(seed=2012, argv=["sim", "vlcsa1"])
        assert block["schema_version"] == REPORT_SCHEMA_VERSION
        assert block["seed"] == 2012
        assert block["argv"] == ["sim", "vlcsa1"]
        assert block["python_version"] == platform.python_version()
        assert block["platform"]
        assert block["machine"]
        import numpy

        assert block["numpy_version"] == numpy.__version__

    def test_git_revision_in_this_checkout(self):
        rev = git_revision()
        # this test runs inside the repository, so a 40-hex rev must resolve
        assert rev is not None
        assert len(rev) == 40
        assert all(c in "0123456789abcdef" for c in rev)

    def test_optional_fields_default_to_none(self):
        block = provenance_block()
        assert block["seed"] is None
        assert block["argv"] is None


class TestWithProvenance:
    def test_attaches_schema_and_provenance(self):
        payload = with_provenance({"rows": []}, seed=7)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["provenance"]["seed"] == 7
        assert payload["rows"] == []

    def test_existing_keys_win(self):
        payload = {"schema_version": 99, "provenance": {"seed": 1}}
        out = with_provenance(payload, seed=2)
        assert out["schema_version"] == 99
        assert out["provenance"] == {"seed": 1}

    def test_json_serializable(self):
        import json

        json.dumps(with_provenance({}, seed=0, argv=["a"]))
