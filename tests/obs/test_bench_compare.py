"""Regression telemetry: compare_reports semantics and the CLI gate."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.bench import compare_reports, load_report

BASELINE = {
    "schema_version": 1,
    "rows": [
        {
            "architecture": "vlcsa1",
            "width": 64,
            "vectors": 1024,
            "compiled_samples_per_s": 100_000.0,
            "speedup": 30.0,
            "fault_speedup": 20.0,
        },
        {
            "architecture": "designware",
            "width": 64,
            "vectors": 1024,
            "compiled_samples_per_s": 150_000.0,
            "speedup": 25.0,
        },
    ],
    "metrics": {"throughput_samples_per_s": 120_000.0},
}


def _degraded(factor, metric="speedup"):
    report = copy.deepcopy(BASELINE)
    for row in report["rows"]:
        if metric in row:
            row[metric] *= factor
    return report


class TestCompareReports:
    def test_identical_reports_pass(self):
        result = compare_reports(BASELINE, copy.deepcopy(BASELINE), 0.1)
        assert result.ok
        assert result.regressions == []
        # 3 + 2 row metrics plus the overall throughput
        assert len(result.deltas) == 6

    def test_twenty_percent_regression_fails_at_ten_percent_tolerance(self):
        result = compare_reports(BASELINE, _degraded(0.8), tolerance=0.1)
        assert not result.ok
        assert {d.metric for d in result.regressions} == {"speedup"}
        assert len(result.regressions) == 2

    def test_regression_within_tolerance_passes(self):
        result = compare_reports(BASELINE, _degraded(0.95), tolerance=0.1)
        assert result.ok

    def test_improvement_passes(self):
        result = compare_reports(BASELINE, _degraded(1.5), tolerance=0.1)
        assert result.ok

    def test_metric_restriction(self):
        result = compare_reports(
            BASELINE, _degraded(0.5), tolerance=0.1, metrics=("fault_speedup",)
        )
        assert result.ok  # only speedup regressed; it was not compared
        assert all(d.metric == "fault_speedup" for d in result.deltas)

    def test_missing_row_warns_but_does_not_fail(self):
        new = copy.deepcopy(BASELINE)
        new["rows"] = new["rows"][:1]
        result = compare_reports(BASELINE, new, 0.1)
        assert result.ok
        assert any("missing from NEW" in w for w in result.warnings)

    def test_schema_version_mismatch_warns(self):
        old = copy.deepcopy(BASELINE)
        del old["schema_version"]  # pre-provenance checked-in baseline
        result = compare_reports(old, BASELINE, 0.1)
        assert any("schema_version differs" in w for w in result.warnings)
        assert result.ok

    def test_missing_metric_is_skipped_not_crashed(self):
        # designware row has no fault_speedup: must simply not compare it
        result = compare_reports(BASELINE, copy.deepcopy(BASELINE), 0.1)
        assert not any(
            d.row.startswith("designware") and d.metric == "fault_speedup"
            for d in result.deltas
        )

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(BASELINE, BASELINE, tolerance=1.5)


class TestLoadReport:
    def test_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="no 'rows'"):
            load_report(str(path))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_report(str(tmp_path / "nope.json"))


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(tmp_path, "new.json", BASELINE)
        assert main(["bench", "compare", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_twenty_percent_regression_exits_one(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(tmp_path, "new.json", _degraded(0.8))
        assert main(["bench", "compare", old, new, "--tolerance", "0.1"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_generous_tolerance_forgives(self, tmp_path):
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(tmp_path, "new.json", _degraded(0.8))
        assert main(["bench", "compare", old, new, "--tolerance", "0.5"]) == 0

    def test_metrics_flag_restricts(self, tmp_path):
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(tmp_path, "new.json", _degraded(0.5))
        assert main(
            ["bench", "compare", old, new, "--metrics", "fault_speedup"]
        ) == 0

    def test_unreadable_report_exits_two(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        assert main(["bench", "compare", old, str(tmp_path / "gone.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_overlap_exits_two(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(
            tmp_path, "new.json", {"rows": [{"architecture": "other", "width": 8}]}
        )
        assert main(["bench", "compare", old, new]) == 2

    def test_checked_in_baseline_compares_against_itself(self):
        from pathlib import Path

        baseline = str(Path(__file__).parents[2] / "BENCH_netlist_sim.json")
        assert (
            main(
                ["bench", "compare", baseline, baseline,
                 "--metrics", "speedup", "fault_speedup",
                 "--tolerance", "0.75"]
            )
            == 0
        )
