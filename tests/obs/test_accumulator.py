"""StreamingMoments tests: exactness, mergeability, snapshot/restore."""

import math

from repro.obs.accumulator import StreamingMoments


def _filled(values):
    moments = StreamingMoments()
    for value in values:
        moments.record(value)
    return moments


def test_empty_accumulator_has_no_moments():
    moments = StreamingMoments()
    assert moments.count == 0
    assert moments.mean is None
    assert moments.variance is None
    assert moments.stddev is None
    assert moments.min is None and moments.max is None


def test_moments_match_direct_computation():
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    moments = _filled(values)
    assert moments.count == len(values)
    assert moments.total == sum(values)
    assert moments.min == min(values) and moments.max == max(values)
    mean = sum(values) / len(values)
    assert moments.mean == mean
    var = sum((v - mean) ** 2 for v in values) / len(values)
    assert math.isclose(moments.variance, var)
    assert math.isclose(moments.stddev, math.sqrt(var))


def test_weighted_record():
    a = _filled([5, 5, 5])
    b = StreamingMoments()
    b.record(5, count=3)
    assert b.to_dict() == a.to_dict()
    b.record(7, count=0)  # no-op
    b.record(7, count=-2)  # no-op
    assert b.to_dict() == a.to_dict()


def test_integer_merge_is_order_independent():
    values = list(range(31))
    # Three different partitions/orders of the same stream.
    whole = _filled(values)
    front = _filled(values[:11]).merge(_filled(values[11:]))
    back = _filled(values[17:]).merge(_filled(values[:17]))
    assert whole.to_dict() == front.to_dict() == back.to_dict()


def test_merge_returns_self_and_handles_empties():
    a = _filled([1, 2])
    empty = StreamingMoments()
    assert a.merge(empty) is a
    assert a.count == 2
    fresh = StreamingMoments()
    fresh.merge(a)
    assert fresh.to_dict() == a.to_dict()


def test_variance_clamps_cancellation_to_zero():
    moments = StreamingMoments()
    # Many identical large floats: sum_sq/count - mean^2 can dip below 0.
    for _ in range(1000):
        moments.record(1e8 + 0.1)
    assert moments.variance >= 0.0
    assert moments.stddev >= 0.0


def test_dict_round_trip():
    moments = _filled([2, 7, 1, 8])
    back = StreamingMoments.from_dict(moments.to_dict())
    assert back.to_dict() == moments.to_dict()
    assert back.mean == moments.mean
    # Round-tripping an empty accumulator keeps None min/max.
    empty = StreamingMoments.from_dict(StreamingMoments().to_dict())
    assert empty.count == 0 and empty.min is None
