"""Chrome trace-event export well-formedness and the text flamegraph."""

import json

import pytest

from repro.obs import spans as obs
from repro.obs.collector import Collector, SpanRecord
from repro.obs.export import (
    chrome_trace_events,
    flamegraph_lines,
    fold_spans,
    to_chrome_trace,
    write_chrome_trace,
)


def _span(name, ts, dur, pid=100, tid=1, path=None, span_id=1, parent_id=0):
    return SpanRecord(
        name=name,
        ts_us=ts,
        dur_us=dur,
        pid=pid,
        tid=tid,
        span_id=span_id,
        parent_id=parent_id,
        path=path or (name,),
    )


@pytest.fixture
def traced():
    obs.reset()
    obs.enable()
    try:
        yield obs.global_collector()
    finally:
        obs.disable()
        obs.reset()


class TestChromeTraceEvents:
    def test_complete_event_fields(self):
        events = chrome_trace_events([_span("work", 10.0, 5.0)])
        (event,) = events
        # the Chrome trace-event schema for complete events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["ts"] == 10.0
        assert event["dur"] == 5.0
        assert event["pid"] == 100
        assert event["tid"] == 1
        assert event["cat"] == "repro"

    def test_events_sorted_monotonic_ts(self):
        spans = [
            _span("c", 30.0, 1.0),
            _span("a", 10.0, 1.0),
            _span("b", 20.0, 1.0),
        ]
        events = chrome_trace_events(spans)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_document_shape(self):
        col = Collector()
        col.spans.append(_span("x", 0.0, 1.0))
        col.add("hits", 2)
        doc = to_chrome_trace(col)
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["counters"] == {"hits": 2}

    def test_write_round_trips_as_json(self, tmp_path, traced):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path))
        assert count == 2
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        for event in events:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_write_explicit_collector(self, tmp_path):
        col = Collector()
        col.spans.append(_span("solo", 1.0, 2.0))
        path = tmp_path / "t.json"
        assert write_chrome_trace(str(path), col) == 1


class TestFlamegraph:
    def test_fold_aggregates_by_path(self):
        spans = [
            _span("a", 0.0, 10.0),
            _span("a", 20.0, 20.0),
            _span("b", 0.0, 5.0, path=("a", "b")),
        ]
        folded = fold_spans(spans)
        assert folded[("a",)] == (30.0, 2)
        assert folded[("a", "b")] == (5.0, 1)

    def test_lines_indent_children_under_parents(self):
        spans = [
            _span("a", 0.0, 10.0),
            _span("b", 1.0, 5.0, path=("a", "b")),
        ]
        lines = flamegraph_lines(spans)
        assert lines[0].lstrip().startswith("a")
        assert lines[1].startswith("  b")

    def test_empty_spans(self):
        assert flamegraph_lines([]) == ["(no spans recorded)"]
