"""Tables 7.1 and 7.2: VLCSA 1 / VLCSA 2 error rates for 2's-complement
Gaussian inputs (mu = 0, sigma = 2^32).

Paper:

===  ===  ==============================  ==============================
 n    k    Tab 7.1 VLCSA 1 (MC, nominal)   Tab 7.2 VLCSA 2 (MC, nominal)
===  ===  ==============================  ==============================
 64   14   25.01%, 25.01%                  0.01%, 0.01%
128   15   25.01%, 25.01%                  0.01%, 0.01%
256   16   25.01%, 25.01%                  0.01%, 0.01%
512   17   25.01%, 25.01%                  0.01%, 0.01%
===  ===  ==============================  ==============================

Monte Carlo error = speculative result (either hypothesis for VLCSA 2)
differs from the true sum; nominal = the detector fires (ERR for VLCSA 1,
ERR0 & ERR1 for VLCSA 2).  VLCSA 2 uses MSB remainder placement (the
reproduction finding documented in EXPERIMENTS.md).
"""

import numpy as np

from repro.analysis.report import format_table, percent
from repro.inputs.generators import gaussian_operands
from repro.model.behavioral import (
    err0_flags,
    err1_flags,
    scsa1_error_flags,
    scsa2_s1_error_flags,
    window_profile,
)

from benchmarks.conftest import mc_samples, run_once

POINTS = [(64, 14), (128, 15), (256, 16), (512, 17)]
PAPER_VLCSA1 = 0.2501
PAPER_VLCSA2 = 0.0001


def test_tab_7_1_and_7_2_gaussian_error_rates(benchmark, bench_rng):
    samples = mc_samples(1_000_000, 250_000)

    def compute():
        rows = []
        for n, k in POINTS:
            a = gaussian_operands(n, samples, rng=bench_rng)
            b = gaussian_operands(n, samples, rng=bench_rng)
            p1 = window_profile(a, b, n, k, "lsb")
            mc1 = float(scsa1_error_flags(p1).mean())
            nom1 = float(err0_flags(p1).mean())
            p2 = window_profile(a, b, n, k, "msb")
            mc2 = float((scsa1_error_flags(p2) & scsa2_s1_error_flags(p2)).mean())
            nom2 = float((err0_flags(p2) & err1_flags(p2)).mean())
            rows.append((n, k, mc1, nom1, mc2, nom2))
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k", "VLCSA1 MC", "VLCSA1 nominal", "VLCSA2 MC", "VLCSA2 nominal"],
            [
                (n, k, percent(m1), percent(n1), percent(m2, 3), percent(n2, 3))
                for n, k, m1, n1, m2, n2 in rows
            ],
            title="Tables 7.1/7.2 — 2's-complement Gaussian error rates "
            "(paper: 25.01% -> 0.01% at every width)",
        )
    )

    for n, k, mc1, nom1, mc2, nom2 in rows:
        # Table 7.1: ~25% at every width, nominal == MC (detector exact here)
        assert abs(mc1 - PAPER_VLCSA1) < 0.01, n
        assert abs(nom1 - mc1) < 0.002, n
        # Table 7.2: three orders of magnitude lower
        assert mc2 < 5e-4, n
        assert nom2 < 1e-3, n
        assert mc2 < mc1 / 100, n
