"""Tables 7.1 and 7.2: VLCSA 1 / VLCSA 2 error rates for 2's-complement
Gaussian inputs (mu = 0, sigma = 2^32).

Paper:

===  ===  ==============================  ==============================
 n    k    Tab 7.1 VLCSA 1 (MC, nominal)   Tab 7.2 VLCSA 2 (MC, nominal)
===  ===  ==============================  ==============================
 64   14   25.01%, 25.01%                  0.01%, 0.01%
128   15   25.01%, 25.01%                  0.01%, 0.01%
256   16   25.01%, 25.01%                  0.01%, 0.01%
512   17   25.01%, 25.01%                  0.01%, 0.01%
===  ===  ==============================  ==============================

Monte Carlo error = speculative result (either hypothesis for VLCSA 2)
differs from the true sum; nominal = the detector fires (ERR for VLCSA 1,
ERR0 & ERR1 for VLCSA 2).  VLCSA 2 uses MSB remainder placement (the
reproduction finding documented in EXPERIMENTS.md).

Each (n, k) point is one :class:`repro.engine.MonteCarloErrorJob` carrying
all four counters; the group runs through one engine call.
"""

from repro.analysis.report import format_table, percent
from repro.engine import MonteCarloErrorJob, run_jobs

from benchmarks.conftest import mc_samples, run_once

POINTS = [(64, 14), (128, 15), (256, 16), (512, 17)]
PAPER_VLCSA1 = 0.2501
PAPER_VLCSA2 = 0.0001
SEED = 712


def test_tab_7_1_and_7_2_gaussian_error_rates(benchmark):
    samples = mc_samples(1_000_000, 250_000)

    def compute():
        jobs = [
            MonteCarloErrorJob(
                width=n,
                window=k,
                samples=samples,
                distribution="gaussian",
                seed=SEED,
                counters=("scsa1", "vlcsa1_nominal", "vlcsa2", "vlcsa2_stall"),
            )
            for n, k in POINTS
        ]
        results = run_jobs(jobs)
        return [
            (
                n,
                k,
                agg.rate("scsa1_errors"),
                agg.rate("vlcsa1_nominal"),
                agg.rate("vlcsa2_errors"),
                agg.rate("vlcsa2_stalls"),
            )
            for (n, k), agg in zip(POINTS, (r.aggregate for r in results))
        ]

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k", "VLCSA1 MC", "VLCSA1 nominal", "VLCSA2 MC", "VLCSA2 nominal"],
            [
                (n, k, percent(m1), percent(n1), percent(m2, 3), percent(n2, 3))
                for n, k, m1, n1, m2, n2 in rows
            ],
            title="Tables 7.1/7.2 — 2's-complement Gaussian error rates "
            "(paper: 25.01% -> 0.01% at every width)",
        )
    )

    for n, k, mc1, nom1, mc2, nom2 in rows:
        # Table 7.1: ~25% at every width, nominal == MC (detector exact here)
        assert abs(mc1 - PAPER_VLCSA1) < 0.01, n
        assert abs(nom1 - mc1) < 0.002, n
        # Table 7.2: three orders of magnitude lower
        assert mc2 < 5e-4, n
        assert nom2 < 1e-3, n
        assert mc2 < mc1 / 100, n
