"""Performance: warm served requests vs cold CLI one-shots.

The serve subsystem (:mod:`repro.serve`) keeps elaborated designs and
measurement caches resident in warm worker shards, so a request pays
only the socket round trip plus (for repeats) a cache lookup.  A cold
CLI invocation pays interpreter start-up, imports, and elaboration on
every call.  This benchmark times both paths for the same evaluation
and enforces the PR's >=10x floor on the warm/cold ratio.

Rows are keyed by ``(architecture, width)`` with a ``speedup`` metric so
``repro bench compare --metrics speedup`` gates them unchanged.  Set
``REPRO_SERVE_BENCH_OUT=path.json`` to write the checked-in
``BENCH_serve.json`` report format.
"""

import json
import os
import subprocess
import sys
import time

from repro.analysis.report import format_table
from repro.serve.client import ServeClient
from repro.serve.harness import ServerThread
from repro.serve.server import ServeConfig

from benchmarks.conftest import full_scale, run_once

SEED = 2012
ERROR_SAMPLES = 2048


def _cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _cold_cli_seconds(args, repeat):
    """Wall time of a fresh ``python -m repro`` process (best of N).

    Every run is genuinely cold: a new interpreter, new imports, new
    elaboration.  Best-of keeps machine noise out of the ratio.
    """
    env = _cli_env()
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env,
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        assert proc.returncode == 0, proc.stderr
        best = elapsed if best is None else min(best, elapsed)
    return best


def _warm_request_seconds(client, kind, params, repeat):
    """Round-trip time of a served request against warm shards."""
    # Warm-up: populate the shard's elaboration/measure caches.
    for _ in range(2):
        client.evaluate(kind, params, seed=SEED)
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        response = client.evaluate(kind, params, seed=SEED)
        elapsed = time.perf_counter() - start
        assert response["ok"] is True
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_perf_serve_warm_vs_cold_cli(benchmark, tmp_path):
    cold_repeat = 3 if full_scale() else 2
    warm_repeat = 10 if full_scale() else 5

    points = [
        {
            "architecture": "serve_measure",
            "width": 64,
            "kind": "measure",
            "params": {"architecture": "vlcsa1", "width": 64, "window": 8},
            "cli": ["report", "64", "--designs", "vlcsa1"],
        },
        {
            "architecture": "serve_errors",
            "width": 32,
            "kind": "errors",
            "params": {"width": 32, "window": 8, "samples": ERROR_SAMPLES},
            "cli": [
                "engine", "errors", "32", "--windows", "8",
                "--samples", str(ERROR_SAMPLES),
            ],
        },
    ]

    def compute():
        uds = str(tmp_path / "bench.sock")
        rows = []
        with ServerThread(
            ServeConfig(
                uds=uds,
                shards=1,
                coalesce_ms=0,
                cache_dir=str(tmp_path / "cache"),
            )
        ):
            with ServeClient(uds=uds) as client:
                for point in points:
                    warm_s = _warm_request_seconds(
                        client, point["kind"], point["params"], warm_repeat
                    )
                    cold_s = _cold_cli_seconds(point["cli"], cold_repeat)
                    rows.append(
                        {
                            "architecture": point["architecture"],
                            "width": point["width"],
                            "kind": point["kind"],
                            "warm_request_s": warm_s,
                            "cold_cli_s": cold_s,
                            "speedup": cold_s / warm_s,
                        }
                    )
        return rows

    rows = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["request", "warm served", "cold CLI", "speedup"],
            [
                (
                    f"{r['architecture']} n={r['width']}",
                    f"{r['warm_request_s'] * 1e3:.2f} ms",
                    f"{r['cold_cli_s'] * 1e3:.0f} ms",
                    f"{r['speedup']:.0f}x",
                )
                for r in rows
            ],
            title=(
                f"served request (warm shard, best of {warm_repeat}) vs "
                f"one-shot CLI (best of {cold_repeat})"
            ),
        )
    )

    out = os.environ.get("REPRO_SERVE_BENCH_OUT")
    if out:
        report = {
            "command": "serve-bench",
            "ok": True,
            "seed": SEED,
            "repeat": warm_repeat,
            "rows": rows,
        }
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    floor = 10.0
    for r in rows:
        assert r["speedup"] >= floor, (
            f"{r['architecture']}: warm served request only "
            f"{r['speedup']:.1f}x faster than the cold CLI "
            f"(floor {floor:.0f}x)"
        )
