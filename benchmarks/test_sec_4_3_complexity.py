"""Section 4.3 / 5.1 / 5.2: the complexity claims, measured.

The thesis' asymptotic arguments, checked as logic-depth measurements over
the generated netlists:

* SCSA critical path is O(log k) — *independent of n* at fixed k;
* traditional prefix adders are O(log n);
* VLCSA detection is O(log k + log(n/k));
* recovery is O(log k + log(n/k)) through the m-bit prefix adder;
* SCSA area is O((n/k)·k·log k) — linear in n at fixed k — versus
  Kogge-Stone's O(n log n).
"""

from repro.adders import build_kogge_stone_adder
from repro.analysis.report import format_table
from repro.core import build_scsa_adder, build_vlcsa1
from repro.netlist.area import area as circuit_area
from repro.netlist.timing import analyze_timing

from benchmarks.conftest import run_once

WIDTHS = (64, 128, 256, 512)
K = 16


def test_sec_4_3_complexity_claims(benchmark):
    def compute():
        rows = []
        for n in WIDTHS:
            ks = build_kogge_stone_adder(n)
            scsa = build_scsa_adder(n, K)
            vlcsa = build_vlcsa1(n, K)
            rep_v = analyze_timing(vlcsa)
            rows.append(
                (
                    n,
                    analyze_timing(ks).logic_depth(),
                    analyze_timing(scsa).logic_depth(),
                    rep_v.logic_depth("err"),
                    rep_v.logic_depth("sum_rec"),
                    circuit_area(ks),
                    circuit_area(scsa),
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "KS depth", f"SCSA(k={K}) depth", "detect depth",
             "recovery depth", "KS area", "SCSA area"],
            rows,
            title="§4.3/§5.1/§5.2 — logic depth and area vs width at fixed k "
            "(unoptimized netlists; depths in gate levels)",
        )
    )

    depths_ks = [r[1] for r in rows]
    depths_scsa = [r[2] for r in rows]
    depths_det = [r[3] for r in rows]
    depths_rec = [r[4] for r in rows]
    areas_ks = [r[5] for r in rows]
    areas_scsa = [r[6] for r in rows]

    # O(log n): +2 gate levels per doubling (2 gates per prefix level)
    assert all(2 <= b - a <= 3 for a, b in zip(depths_ks, depths_ks[1:]))
    # O(log k): SCSA depth flat in n
    assert max(depths_scsa) - min(depths_scsa) == 0
    # detection grows like log(n/k): ~1-2 levels per doubling, from a base
    # comparable to the speculative depth
    assert all(0 <= b - a <= 3 for a, b in zip(depths_det, depths_det[1:]))
    assert depths_det[0] <= depths_scsa[0] + 2
    # recovery = speculative + prefix-over-windows
    assert all(r >= s for r, s in zip(depths_rec, depths_scsa))
    # area: SCSA linear in n (ratio between successive widths ~2),
    # KS super-linear (ratio > 2)
    scsa_ratios = [b / a for a, b in zip(areas_scsa, areas_scsa[1:])]
    ks_ratios = [b / a for a, b in zip(areas_ks, areas_ks[1:])]
    assert all(1.9 < r < 2.1 for r in scsa_ratios), scsa_ratios
    assert all(r > 2.1 for r in ks_ratios), ks_ratios
