"""Ablation: prefix-network choice in the error-recovery block.

Thesis §5.2 prices recovery as "the major area overhead of VLCSA" and
requires it to fit two clock cycles.  The m-bit window-carry prefix adder
inside it can use any topology; this sweep quantifies the trade.

Measured finding: the two-cycle budget is *tight*, not loose — at n=256
the minimum-depth recoveries (Kogge-Stone, Sklansky) fit with ~25% slack,
Brent-Kung narrowly misses it, and a serial window-carry chain misses by
2x.  The thesis' choice of a log-depth prefix for recovery is load-
bearing, and the 1-2% area it costs over the alternatives is the price of
the two-cycle guarantee.
"""

from repro.analysis.report import format_table, percent, ratio
from repro.core import build_vlcsa1
from repro.model.latency import VariableLatencyTiming
from repro.netlist.area import area as circuit_area
from repro.netlist.optimize import optimize
from repro.netlist.timing import analyze_timing

from benchmarks.conftest import run_once

NETWORKS = ("kogge_stone", "brent_kung", "sklansky", "serial")
N, K = 256, 16


def test_ablation_recovery_network(benchmark):
    def compute():
        rows = []
        for net in NETWORKS:
            c, _ = optimize(build_vlcsa1(N, K, recovery_network=net))
            rep = analyze_timing(c)
            rows.append(
                (
                    net,
                    rep.buses_delay(("sum",)),
                    rep.bus_delay("err"),
                    rep.bus_delay("sum_rec"),
                    circuit_area(c),
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    base_area = dict((r[0], r[4]) for r in rows)["kogge_stone"]

    print()
    print(
        format_table(
            ["recovery network", "spec", "detect", "recover",
             "fits 2 cycles", "area", "vs KS-recovery"],
            [
                (
                    net, f"{spec:.3f}", f"{det:.3f}", f"{rec:.3f}",
                    VariableLatencyTiming(spec, det, rec).recovery_fits_two_cycles,
                    f"{a:.0f}", percent(ratio(a, base_area)),
                )
                for net, spec, det, rec, a in rows
            ],
            title=f"Ablation — recovery prefix network (VLCSA 1, n={N}, k={K})",
        )
    )

    by_net = {r[0]: r for r in rows}
    # speculative and detection paths are untouched by the recovery choice
    for net, spec, det, _, _ in rows:
        assert abs(spec - by_net["kogge_stone"][1]) < 0.02, net
    # minimum-depth recoveries fit two cycles; slower topologies miss
    for net, fits in [("kogge_stone", True), ("sklansky", True), ("serial", False)]:
        _, spec, det, rec, _ = by_net[net]
        timing = VariableLatencyTiming(spec, det, rec)
        assert timing.recovery_fits_two_cycles == fits, net
    # Brent-Kung recovery is never bigger than Kogge-Stone recovery ...
    assert by_net["brent_kung"][4] <= by_net["kogge_stone"][4] * 1.01
    # ... but its extra depth eats most (or all) of the two-cycle slack
    assert by_net["brent_kung"][3] > by_net["kogge_stone"][3] * 1.15
    # serial recovery is the smallest and by far the slowest
    assert by_net["serial"][4] <= min(r[4] for r in rows) * 1.01
    assert by_net["serial"][3] >= max(r[3] for r in rows) * 0.99
