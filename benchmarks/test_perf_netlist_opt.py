"""Performance: equivalence-gated netlist optimization wins.

The area pipeline (``AREA_PASSES``: constant folding, structural
hashing/CSE, inverter merging, compound-cell mapping, dead-gate
stripping) is the optimizer configuration ``repro opt`` benchmarks and
CI gates.  This benchmark regenerates the headline rows of
``BENCH_netlist_opt.json`` on the carry-select family — the paper's
architecture, where duplicated speculative/carry logic gives CSE the
most to share — proves every pass with the CEC engine, and enforces
the PR's floors: >=10% gate-count reduction on CSLA at every measured
width, with the optimized netlist bit-identical to the raw one on both
simulation backends.

Simulation *speed* after optimization is checked only loosely (>=0.85x
at n=64): fewer gates usually simulate faster, but structural sharing
can lengthen the levelized schedule's dependency chains, and measured
speedups hover around 1.0x (0.9-1.4x across the grid).
"""

import time

from repro.analysis.report import format_table
from repro.engine.elab import build_design
from repro.netlist.equiv import random_input_batch
from repro.netlist.optimize import AREA_PASSES, depth_levels, optimize
from repro.netlist.simulate import simulate_batch

from benchmarks.conftest import full_scale, run_once

WIDTHS = (8, 16, 32, 64)

#: CI floor: CSLA gate-count reduction (raw/optimized) at every width.
GATE_REDUCTION_FLOOR = 1.10

#: Loose floor on compiled-backend throughput after optimization.
SIM_SPEEDUP_FLOOR = 0.85


def _best_of(fn, repeat=3):
    best, result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_perf_netlist_opt_csla(benchmark):
    n_vectors = 4096 if full_scale() else 1024

    def compute():
        rows = []
        for width in WIDTHS:
            raw = build_design("carry_select", width)
            opt, stats = optimize(
                raw, passes=AREA_PASSES, buffer_limit=None, prove=True
            )
            assert stats.proved and stats.rollbacks == 0
            batch = random_input_batch(raw, n_vectors, seed=width)
            t_raw, out_raw = _best_of(
                lambda: simulate_batch(raw, batch, backend="compiled")
            )
            t_opt, out_opt = _best_of(
                lambda: simulate_batch(opt, batch, backend="compiled")
            )
            out_ref = simulate_batch(opt, batch, backend="reference")
            assert out_opt == out_ref, "backends diverged on optimized netlist"
            for bus in raw.output_buses:
                assert out_opt[bus] == out_raw[bus], (width, bus)
            rows.append(
                {
                    "width": width,
                    "gates_raw": raw.num_gates,
                    "gates_opt": opt.num_gates,
                    "gate_reduction": raw.num_gates / opt.num_gates,
                    "depth_raw": depth_levels(raw),
                    "depth_opt": depth_levels(opt),
                    "sim_speedup": t_raw / t_opt,
                }
            )
        return rows

    rows = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["n", "gates", "optimized", "reduction", "depth", "sim speedup"],
            [
                (
                    str(r["width"]),
                    str(r["gates_raw"]),
                    str(r["gates_opt"]),
                    f"{r['gate_reduction']:.3f}x",
                    f"{r['depth_raw']} -> {r['depth_opt']}",
                    f"{r['sim_speedup']:.2f}x",
                )
                for r in rows
            ],
            title=f"carry_select, AREA pipeline, CEC-proved, "
            f"{n_vectors} vectors (best of 3)",
        )
    )
    for r in rows:
        assert r["gate_reduction"] >= GATE_REDUCTION_FLOOR, (
            f"CSLA n={r['width']} gate reduction {r['gate_reduction']:.3f}x "
            f"below the {GATE_REDUCTION_FLOOR:.2f}x floor"
        )
        assert r["depth_opt"] <= r["depth_raw"], (
            f"CSLA n={r['width']} optimization increased logic depth"
        )
    widest = rows[-1]
    assert widest["sim_speedup"] >= SIM_SPEEDUP_FLOOR, (
        f"optimized CSLA n=64 simulates {widest['sim_speedup']:.2f}x "
        f"vs raw, below the loose {SIM_SPEEDUP_FLOOR:.2f}x floor"
    )
