"""Ablation: detection-tree mapping (naive AND+OR vs AOI22-merged).

Thesis Fig. 5.1 draws ERR0 as a row of 2-input ANDs into a 2-input OR
tree.  Mapped naively that costs 1 + ceil(log2(m-1)) non-inverting
levels; `repro.core.detection` folds each AND pair and its OR into one
AOI22 and alternates NAND/NOR above — what a synthesis tool does.  This
bench quantifies the difference, which is what lets VLCSA 1's detection
keep up with its speculative path (Fig. 7.4's comparison point).
"""

from repro.analysis.report import format_table, percent, ratio
from repro.core.detection import build_err0
from repro.netlist.circuit import Circuit
from repro.netlist.simulate import simulate
from repro.netlist.timing import analyze_timing

from benchmarks.conftest import run_once

WINDOW_COUNTS = (5, 9, 16, 31, 40)


def _naive_err0(circuit, group_g, group_p):
    """Literal Fig. 5.1: AND row into an OR2 stack."""
    m = len(group_g)
    terms = [circuit.add_gate("AND2", [group_p[i + 1], group_g[i]])
             for i in range(m - 1)]
    level = terms
    while len(level) > 1:
        nxt = [circuit.add_gate("OR2", [level[i], level[i + 1]])
               for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _build(m, style):
    c = Circuit(f"det_{style}_{m}")
    g = c.add_input_bus("g", m)
    p = c.add_input_bus("p", m)
    err = build_err0(c, g, p) if style == "mapped" else _naive_err0(c, g, p)
    c.set_output("err", err)
    return c


def test_ablation_detection_mapping(benchmark):
    def compute():
        rows = []
        for m in WINDOW_COUNTS:
            naive = _build(m, "naive")
            mapped = _build(m, "mapped")
            # functional equivalence over a sample of inputs
            for gv, pv in [(0, 0), (1, 2), (3, 6), ((1 << m) - 1, (1 << m) - 1),
                           (0b1010101 & ((1 << m) - 1), 0b0101011 & ((1 << m) - 1))]:
                assert (simulate(naive, {"g": gv, "p": pv})["err"]
                        == simulate(mapped, {"g": gv, "p": pv})["err"]), (m, gv, pv)
            rows.append(
                (
                    m,
                    analyze_timing(naive).critical_delay,
                    analyze_timing(mapped).critical_delay,
                    naive.num_gates,
                    mapped.num_gates,
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["windows m", "naive delay", "mapped delay", "Δ", "naive gates", "mapped gates"],
            [
                (m, f"{dn:.3f}", f"{dm:.3f}", percent(ratio(dm, dn)), gn, gm)
                for m, dn, dm, gn, gm in rows
            ],
            title="Ablation — ERR0 detection-tree mapping",
        )
    )

    for m, naive_delay, mapped_delay, naive_gates, mapped_gates in rows:
        assert mapped_delay < naive_delay, m
        assert mapped_gates <= naive_gates, m
