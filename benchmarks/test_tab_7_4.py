"""Table 7.4: SCSA/VLCSA 1 window sizes for 0.01% and 0.25% error targets.

Paper:

===  ===========  ===========
 n    k @ 0.01%    k @ 0.25%
===  ===========  ===========
 64       14           10
128       15           11
256       16           12
512       17           13
===  ===========  ===========
"""

from repro.analysis.report import format_table
from repro.analysis.sizing import THESIS_TABLE_7_4, scsa_window_size_for
from repro.model.error_model import scsa_error_rate

from benchmarks.conftest import run_once


def test_tab_7_4_window_sizes(benchmark):
    def compute():
        return [
            (
                n,
                scsa_window_size_for(n, 1e-4),
                scsa_window_size_for(n, 25e-4),
            )
            for n in sorted(THESIS_TABLE_7_4)
        ]

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k@0.01% (paper/ours)", "rate", "k@0.25% (paper/ours)", "rate"],
            [
                (
                    n,
                    f"{THESIS_TABLE_7_4[n][0]} / {k_low}",
                    f"{scsa_error_rate(n, k_low):.3%}",
                    f"{THESIS_TABLE_7_4[n][1]} / {k_high}",
                    f"{scsa_error_rate(n, k_high):.3%}",
                )
                for n, k_low, k_high in rows
            ],
            title="Table 7.4 — SCSA window sizes per error target",
        )
    )

    for n, k_low, k_high in rows:
        assert (k_low, k_high) == THESIS_TABLE_7_4[n], n
        assert k_high < k_low  # looser target -> smaller windows
