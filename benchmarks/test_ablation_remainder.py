"""Ablation: remainder-window placement in VLCSA 2 (reproduction finding).

The thesis (§4) places the smaller remainder window at the LSB.  For
VLCSA 2 on 2's-complement Gaussian operands that placement inflates the
stall rate by an order of magnitude: an r-bit LSB window is all-propagate
with probability 2^-r, raising a spurious ERR1 against the dominant
reaches-the-MSB carry chains.  Expected stall ≈ 25% * 2^-r + base rate.
Only MSB placement reproduces Tables 7.2/7.5 (see EXPERIMENTS.md).
"""


from repro.analysis.report import format_table, percent
from repro.core.window import plan_windows
from repro.inputs.generators import gaussian_operands
from repro.model.behavioral import err0_flags, err1_flags, window_profile

from benchmarks.conftest import mc_samples, run_once

POINTS = [(64, 14), (128, 15), (256, 16), (512, 17)]


def test_ablation_remainder_placement(benchmark, bench_rng):
    samples = mc_samples(1_000_000, 250_000)

    def compute():
        rows = []
        for n, k in POINTS:
            a = gaussian_operands(n, samples, rng=bench_rng)
            b = gaussian_operands(n, samples, rng=bench_rng)
            rates = {}
            for rem in ("lsb", "msb"):
                p = window_profile(a, b, n, k, rem)
                rates[rem] = float((err0_flags(p) & err1_flags(p)).mean())
            r = min(plan_windows(n, k).sizes)
            rows.append((n, k, r, rates["lsb"], rates["msb"]))
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k", "remainder bits", "stall (LSB rem.)", "stall (MSB rem.)",
             "predicted LSB excess 25%*2^-r"],
            [
                (n, k, r, percent(lsb, 3), percent(msb, 3),
                 percent(0.25 * 2.0 ** -r, 3))
                for n, k, r, lsb, msb in rows
            ],
            title="Ablation — VLCSA 2 stall rate vs remainder placement "
            "(2's-complement Gaussian, sigma=2^32)",
        )
    )

    for n, k, r, lsb_rate, msb_rate in rows:
        predicted_excess = 0.25 * 2.0 ** -r
        # LSB placement pays roughly the predicted spurious-ERR1 excess
        # (when there is a true remainder window and the excess is above
        # Monte Carlo resolution; n % k == 0 makes the placements equal).
        if n % k != 0 and predicted_excess > 20 / samples:
            assert lsb_rate > msb_rate + 0.3 * predicted_excess, (n, k)
        # MSB placement achieves the paper's ~0.01% regime.
        assert msb_rate < 5e-4, (n, k)
