"""Figures 7.8/7.9: VLCSA 1 versus the DesignWare adder.

Paper (Table 7.4 window sizes): the "correctly speculated" single-cycle
path of VLCSA 1 is ~10% below the DesignWare adder, recovery stays under
two of those cycles, and the area requirement is -6..+42% @0.01%
(-19..+16% @0.25%) relative to DesignWare, improving with width.  Average
cycle follows Eq. 5.2: choosing 0.25% instead of 0.01% costs ~0.12% in
average cycle and saves ~17% area.
"""

from repro.analysis.compare import measure_designware, measure_vlcsa1
from repro.analysis.report import format_table, percent, ratio
from repro.analysis.sizing import THESIS_TABLE_7_4
from repro.model.error_model import scsa_error_rate
from repro.model.latency import VariableLatencyTiming, average_cycle

from benchmarks.conftest import run_once


def test_fig_7_8_7_9_vlcsa1_vs_designware(benchmark):
    def compute():
        rows = []
        for n in sorted(THESIS_TABLE_7_4):
            k_low, k_high = THESIS_TABLE_7_4[n]
            rows.append(
                (
                    n,
                    measure_designware(n),
                    (k_low, measure_vlcsa1(n, k_low)),
                    (k_high, measure_vlcsa1(n, k_high)),
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    table = []
    for n, dw, (k_low, lo), (k_high, hi) in rows:
        t_hi = VariableLatencyTiming(hi.t_spec, hi.t_detect, hi.t_recover)
        ave_hi = average_cycle(t_hi, scsa_error_rate(n, k_high))
        table.append(
            (
                n,
                f"{dw.delay:.3f}",
                f"{lo.delay:.3f}", percent(ratio(lo.delay, dw.delay)),
                f"{lo.t_recover:.3f}",
                f"{lo.area:.0f}", percent(ratio(lo.area, dw.area)),
                f"{hi.area:.0f}", percent(ratio(hi.area, dw.area)),
                f"{(ave_hi / t_hi.t_clk - 1) * 100:.3f}%",
            )
        )

    print()
    print(
        format_table(
            ["n", "DW d", "VLCSA1 d", "Δd", "rec", "area@.01", "Δ",
             "area@.25", "Δ", "avg-cycle overhead@.25"],
            table,
            title="Figs 7.8/7.9 — VLCSA 1 vs DesignWare "
            "(paper: -10% delay; area -6..+42% @0.01%, -19..+16% @0.25%; "
            "recovery < 2 cycles; +0.12% avg cycle buys ~17% area)",
        )
    )

    for n, dw, (k_low, lo), (k_high, hi) in rows:
        assert lo.delay < dw.delay, n          # Fig 7.8
        assert hi.delay < dw.delay, n
        assert hi.area < lo.area, n            # error/area trade (Fig 7.9)
        t = VariableLatencyTiming(lo.t_spec, lo.t_detect, lo.t_recover)
        assert t.recovery_fits_two_cycles, n
        # Eq. 5.2 average-cycle penalty at 0.25% is a fraction of a percent
        t_hi = VariableLatencyTiming(hi.t_spec, hi.t_detect, hi.t_recover)
        overhead = average_cycle(t_hi, scsa_error_rate(n, k_high)) / t_hi.t_clk - 1
        assert overhead < 0.005, n
    # area requirement vs DW improves as width grows (paper's trend)
    area_gap = [ratio(lo.area, dw.area) for _, dw, (_, lo), _ in rows]
    assert area_gap[-1] < area_gap[0]
