"""Figure 7.1: analytical SCSA error model vs Monte Carlo simulation.

Paper: markers (simulation, 10^7 unsigned uniform inputs) sit on the solid
analytic curves for n in {64, 128, 256, 512} across window sizes.

The Monte Carlo column runs through :mod:`repro.engine`: one
deterministically-seeded job per (n, k) point, all executed as a group
(serial here for reproducible timing; ``run_jobs(..., workers=N)`` gives
the same bits on a multi-core box).
"""

import pytest

from repro.analysis.report import format_table
from repro.engine import MonteCarloErrorJob, run_jobs
from repro.model.error_model import scsa_error_rate, scsa_error_rate_exact

from benchmarks.conftest import mc_samples, run_once

#: (width, window sizes where the rate is measurable at reduced scale)
POINTS = [
    (64, (6, 8, 10, 12)),
    (128, (7, 9, 11, 13)),
    (256, (8, 10, 12, 14)),
    (512, (9, 11, 13, 15)),
]

SEED = 71


def test_fig_7_1_error_model_validation(benchmark):
    samples = mc_samples(10_000_000, 400_000)
    flat = [(n, k) for n, ks in POINTS for k in ks]

    def compute():
        jobs = [
            MonteCarloErrorJob(
                width=n, window=k, samples=samples, seed=SEED, counters=("scsa1",)
            )
            for n, k in flat
        ]
        results = run_jobs(jobs)
        return [
            (
                n,
                k,
                scsa_error_rate(n, k),
                scsa_error_rate_exact(n, k),
                result.aggregate.rate("scsa1_errors"),
            )
            for (n, k), result in zip(flat, results)
        ]

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k", "Eq.3.13", "exact DP", f"MC({samples})", "MC/analytic"],
            [(n, k, a, e, m, m / a if a else 0) for n, k, a, e, m in rows],
            title="Fig 7.1 — analytic vs simulated SCSA error rates "
            "(paper: 'analytical and experimental results fit quite well')",
        )
    )

    for n, k, analytic, exact, mc in rows:
        # exact model is a refinement of (and bounded by) the union bound
        assert exact <= analytic * 1.001
        # Monte Carlo within statistical noise of the exact model
        sigma = (exact * (1 - exact) / samples) ** 0.5
        assert mc == pytest.approx(exact, abs=max(5 * sigma, 0.10 * exact)), (n, k)
