"""Figure 7.1: analytical SCSA error model vs Monte Carlo simulation.

Paper: markers (simulation, 10^7 unsigned uniform inputs) sit on the solid
analytic curves for n in {64, 128, 256, 512} across window sizes.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.model.behavioral import monte_carlo_scsa_error_rate
from repro.model.error_model import scsa_error_rate, scsa_error_rate_exact

from benchmarks.conftest import mc_samples, run_once

#: (width, window sizes where the rate is measurable at reduced scale)
POINTS = [
    (64, (6, 8, 10, 12)),
    (128, (7, 9, 11, 13)),
    (256, (8, 10, 12, 14)),
    (512, (9, 11, 13, 15)),
]


def test_fig_7_1_error_model_validation(benchmark):
    samples = mc_samples(10_000_000, 400_000)

    def compute():
        rows = []
        rng = np.random.default_rng(71)
        for n, ks in POINTS:
            for k in ks:
                analytic = scsa_error_rate(n, k)
                exact = scsa_error_rate_exact(n, k)
                mc = monte_carlo_scsa_error_rate(n, k, samples, rng)
                rows.append((n, k, analytic, exact, mc))
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k", "Eq.3.13", "exact DP", f"MC({samples})", "MC/analytic"],
            [(n, k, a, e, m, m / a if a else 0) for n, k, a, e, m in rows],
            title="Fig 7.1 — analytic vs simulated SCSA error rates "
            "(paper: 'analytical and experimental results fit quite well')",
        )
    )

    for n, k, analytic, exact, mc in rows:
        # exact model is a refinement of (and bounded by) the union bound
        assert exact <= analytic * 1.001
        # Monte Carlo within statistical noise of the exact model
        sigma = (exact * (1 - exact) / samples) ** 0.5
        assert mc == pytest.approx(exact, abs=max(5 * sigma, 0.10 * exact)), (n, k)
