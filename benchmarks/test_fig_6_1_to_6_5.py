"""Figures 6.1, 6.3, 6.4, 6.5: carry-chain-length statistics per input class.

Paper (32-bit additions, 10^6 samples per class):

* Fig 6.1 unsigned uniform          — geometric decay, no long chains;
* Fig 6.3 2's-complement uniform    — same shape as 6.1;
* Fig 6.4 unsigned Gaussian         — same shape as 6.1;
* Fig 6.5 2's-complement Gaussian   — bimodal: short chains plus a
  nontrivial mass of chains "as long as the adder size".
"""


from repro.analysis.report import format_series
from repro.inputs.generators import gaussian_operands, uniform_operands
from repro.model.carry_chains import chain_length_histogram

from benchmarks.conftest import mc_samples, run_once

WIDTH = 32
SIGMA = float(2 ** 16)  # scaled so the active region sits inside 32 bits


def _classes(samples, rng):
    return {
        "Fig6.1 unsigned-uniform": (
            uniform_operands(WIDTH, samples, rng),
            uniform_operands(WIDTH, samples, rng),
        ),
        # bit-wise, uniform 2's complement is uniform: same generator
        "Fig6.3 2c-uniform": (
            uniform_operands(WIDTH, samples, rng),
            uniform_operands(WIDTH, samples, rng),
        ),
        "Fig6.4 unsigned-gaussian": (
            gaussian_operands(WIDTH, samples, SIGMA, signed=False, rng=rng),
            gaussian_operands(WIDTH, samples, SIGMA, signed=False, rng=rng),
        ),
        "Fig6.5 2c-gaussian": (
            gaussian_operands(WIDTH, samples, SIGMA, rng=rng),
            gaussian_operands(WIDTH, samples, SIGMA, rng=rng),
        ),
    }


def test_figs_6_1_to_6_5_chain_histograms(benchmark, bench_rng):
    samples = mc_samples(1_000_000, 200_000)

    def compute():
        hists = {}
        for name, (a, b) in _classes(samples, bench_rng).items():
            hists[name] = chain_length_histogram(a, b, WIDTH)
        return hists

    hists = run_once(benchmark, compute)

    lengths = list(range(1, WIDTH + 1))
    print()
    print(
        format_series(
            "len",
            lengths,
            [(name.split()[1], hists[name][1:]) for name in hists],
            title=f"Figs 6.1/6.3/6.4/6.5 — carry-chain length histograms "
            f"(n={WIDTH}, {samples} samples)",
        )
    )

    uniform = hists["Fig6.1 unsigned-uniform"]
    gaussian2c = hists["Fig6.5 2c-gaussian"]

    # Uniform-like classes: rapid decay, negligible long-chain mass.
    for name in ("Fig6.1 unsigned-uniform", "Fig6.3 2c-uniform",
                 "Fig6.4 unsigned-gaussian"):
        h = hists[name]
        assert h[1] > h[4] > h[8], name
        assert h[16:].sum() < 5e-3, name

    # 2's-complement Gaussian: bimodal with real long-chain mass.
    assert gaussian2c[16:].sum() > 0.01
    assert gaussian2c[16:].sum() > 20 * uniform[16:].sum()
    # short chains still dominate overall
    assert gaussian2c[1:6].sum() > 0.5
