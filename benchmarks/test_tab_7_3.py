"""Table 7.3: SCSA window size vs VLSA speculative chain length at 0.01%.

Paper:

===  ==============  ==========================
 n    SCSA window k   VLSA chain length l [17]
===  ==============  ==========================
 64        14                 17
128        15                 18
256        16                 20
512        17                 21
===  ==============  ==========================
"""

from repro.analysis.report import format_table
from repro.analysis.sizing import (
    THESIS_TABLE_7_3,
    scsa_window_size_for,
    vlsa_chain_length_for,
)

from benchmarks.conftest import run_once

TARGET = 1e-4


def test_tab_7_3_parameters(benchmark):
    def compute():
        return [
            (n, scsa_window_size_for(n, TARGET), vlsa_chain_length_for(n, TARGET))
            for n in sorted(THESIS_TABLE_7_3)
        ]

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "SCSA k (paper)", "SCSA k (ours)", "VLSA l (paper)", "VLSA l (ours)"],
            [
                (n, THESIS_TABLE_7_3[n][0], k, THESIS_TABLE_7_3[n][1], l)
                for n, k, l in rows
            ],
            title="Table 7.3 — design parameters for 0.01% error",
        )
    )

    for n, k, l in rows:
        paper_k, paper_l = THESIS_TABLE_7_3[n]
        assert k == paper_k, n          # analytic model reproduces exactly
        assert abs(l - paper_l) <= 1, n  # within 1 (model-flavour difference)
        assert k < l, n                  # the table's point: window < chain
