"""Performance: compiled gate-level simulation vs the interpreter.

The compiled backend (:mod:`repro.netlist.compile`) levelizes the
netlist once, generates a straight-line Python kernel, and moves the
batch transposes to vectorized numpy bit-plane packing; concurrent fault
simulation packs 64 stuck-at faults per forward pass and recomputes only
each fault group's fan-out cone.  This benchmark times both backends on
the same inputs, asserts they agree bit for bit, and enforces the PR's
speedup floors (>=10x batch simulation, >=20x fault coverage at n=64).

The floors are asserted at full scale only (``REPRO_FULL_SCALE=1``);
at the reduced CI scale the compile overhead is a visible fraction of
the budget and the run only checks correctness plus a loose floor.
"""

import random
import time

from repro.analysis.report import format_table
from repro.core import build_vlcsa1
from repro.netlist.faults import fault_coverage, fault_coverage_reference
from repro.netlist.simulate import simulate_batch, simulate_batch_reference

from benchmarks.conftest import full_scale, run_once

WIDTH, K = 64, 8


def _vectors(circuit, count, seed):
    gen = random.Random(seed)
    return {
        name: [gen.getrandbits(len(nets)) for _ in range(count)]
        for name, nets in circuit.input_buses.items()
    }


def _best_of(fn, repeat=3):
    best, result = None, None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_perf_simulate_batch(benchmark):
    n_vectors = 1024 if full_scale() else 256

    def compute():
        circuit = build_vlcsa1(WIDTH, K)
        batch = _vectors(circuit, n_vectors, 17)
        t_ref, out_ref = _best_of(
            lambda: simulate_batch_reference(circuit, batch)
        )
        t_cmp, out_cmp = _best_of(
            lambda: simulate_batch(circuit, batch, backend="compiled")
        )
        assert out_cmp == out_ref, "compiled backend diverged from reference"
        return {"reference_s": t_ref, "compiled_s": t_cmp,
                "speedup": t_ref / t_cmp}

    r = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["backend", "time", "speedup"],
            [
                ("reference interpreter", f"{r['reference_s'] * 1e3:.2f} ms", "1.0x"),
                ("compiled", f"{r['compiled_s'] * 1e3:.2f} ms",
                 f"{r['speedup']:.1f}x"),
            ],
            title=f"simulate_batch, VLCSA 1 n={WIDTH} k={K}, "
            f"{n_vectors} vectors (best of 3)",
        )
    )
    floor = 10.0 if full_scale() else 4.0
    assert r["speedup"] >= floor, (
        f"compiled simulate_batch speedup {r['speedup']:.1f}x "
        f"below the {floor:.0f}x floor"
    )


def test_perf_fault_coverage(benchmark):
    n_vectors = 1024 if full_scale() else 128

    def compute():
        circuit = build_vlcsa1(WIDTH, K)
        batch = _vectors(circuit, n_vectors, 29)
        t_ref, slow = _best_of(
            lambda: fault_coverage_reference(circuit, batch)
        )
        t_cmp, fast = _best_of(lambda: fault_coverage(circuit, batch))
        assert (fast.total, fast.detected) == (slow.total, slow.detected)
        assert fast.undetected == slow.undetected
        return {"reference_s": t_ref, "compiled_s": t_cmp,
                "speedup": t_ref / t_cmp, "coverage": fast.coverage,
                "faults": fast.total}

    r = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["backend", "time", "speedup"],
            [
                ("per-fault interpreter", f"{r['reference_s']:.3f} s", "1.0x"),
                ("concurrent bit-plane", f"{r['compiled_s']:.3f} s",
                 f"{r['speedup']:.1f}x"),
            ],
            title=f"fault_coverage, VLCSA 1 n={WIDTH} k={K}, "
            f"{n_vectors} vectors, {r['faults']} faults, "
            f"coverage {r['coverage']:.4f}",
        )
    )
    floor = 20.0 if full_scale() else 6.0
    assert r["speedup"] >= floor, (
        f"concurrent fault coverage speedup {r['speedup']:.1f}x "
        f"below the {floor:.0f}x floor"
    )
