"""Performance: compiled gate-level simulation vs the interpreter.

The compiled backend (:mod:`repro.netlist.compile`) levelizes the
netlist once, generates a straight-line Python kernel, and moves the
batch transposes to vectorized numpy bit-plane packing; concurrent fault
simulation packs 64 stuck-at faults per forward pass and recomputes only
each fault group's fan-out cone.  This benchmark times both backends on
the same inputs, asserts they agree bit for bit, and enforces the PR's
speedup floors (>=10x batch simulation, >=20x fault coverage at n=64).

The floors are asserted at full scale only (``REPRO_FULL_SCALE=1``);
at the reduced CI scale the compile overhead is a visible fraction of
the budget and the run only checks correctness plus a loose floor.
"""

import random
import time

from repro.analysis.report import format_table
from repro.core import build_vlcsa1
from repro.netlist.faults import fault_coverage, fault_coverage_reference
from repro.netlist.simulate import simulate_batch, simulate_batch_reference

from benchmarks.conftest import full_scale, run_once

WIDTH, K = 64, 8


def _vectors(circuit, count, seed):
    gen = random.Random(seed)
    return {
        name: [gen.getrandbits(len(nets)) for _ in range(count)]
        for name, nets in circuit.input_buses.items()
    }


def _best_of(fn, repeat=3, clock=time.perf_counter):
    best, result = None, None
    for _ in range(repeat):
        start = clock()
        result = fn()
        elapsed = clock() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_perf_simulate_batch(benchmark):
    n_vectors = 1024 if full_scale() else 256

    def compute():
        circuit = build_vlcsa1(WIDTH, K)
        batch = _vectors(circuit, n_vectors, 17)
        t_ref, out_ref = _best_of(
            lambda: simulate_batch_reference(circuit, batch)
        )
        t_cmp, out_cmp = _best_of(
            lambda: simulate_batch(circuit, batch, backend="compiled")
        )
        assert out_cmp == out_ref, "compiled backend diverged from reference"
        return {"reference_s": t_ref, "compiled_s": t_cmp,
                "speedup": t_ref / t_cmp}

    r = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["backend", "time", "speedup"],
            [
                ("reference interpreter", f"{r['reference_s'] * 1e3:.2f} ms", "1.0x"),
                ("compiled", f"{r['compiled_s'] * 1e3:.2f} ms",
                 f"{r['speedup']:.1f}x"),
            ],
            title=f"simulate_batch, VLCSA 1 n={WIDTH} k={K}, "
            f"{n_vectors} vectors (best of 3)",
        )
    )
    floor = 10.0 if full_scale() else 4.0
    assert r["speedup"] >= floor, (
        f"compiled simulate_batch speedup {r['speedup']:.1f}x "
        f"below the {floor:.0f}x floor"
    )


def test_perf_fault_coverage(benchmark):
    n_vectors = 1024 if full_scale() else 128

    def compute():
        circuit = build_vlcsa1(WIDTH, K)
        batch = _vectors(circuit, n_vectors, 29)
        t_ref, slow = _best_of(
            lambda: fault_coverage_reference(circuit, batch)
        )
        t_cmp, fast = _best_of(lambda: fault_coverage(circuit, batch))
        assert (fast.total, fast.detected) == (slow.total, slow.detected)
        assert fast.undetected == slow.undetected
        return {"reference_s": t_ref, "compiled_s": t_cmp,
                "speedup": t_ref / t_cmp, "coverage": fast.coverage,
                "faults": fast.total}

    r = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["backend", "time", "speedup"],
            [
                ("per-fault interpreter", f"{r['reference_s']:.3f} s", "1.0x"),
                ("concurrent bit-plane", f"{r['compiled_s']:.3f} s",
                 f"{r['speedup']:.1f}x"),
            ],
            title=f"fault_coverage, VLCSA 1 n={WIDTH} k={K}, "
            f"{n_vectors} vectors, {r['faults']} faults, "
            f"coverage {r['coverage']:.4f}",
        )
    )
    floor = 20.0 if full_scale() else 6.0
    assert r["speedup"] >= floor, (
        f"concurrent fault coverage speedup {r['speedup']:.1f}x "
        f"below the {floor:.0f}x floor"
    )


def test_perf_vectorized_backend(benchmark):
    """PR 8 headline: the level-vectorized limb backend vs the compiled
    big-int kernel at large batch sizes, bit identity asserted.

    Measured on the DesignWare-style baseline adder at n=64, the
    acceptance point from the bench trajectory (the deepest-fused level
    structure of the grid; VLCSA's wide mux levels fuse less and land
    around 2.5x).  The gate-evaluation phase alone is ~10x faster than
    the big-int kernel; the end-to-end ratio is Amdahl-capped by the
    shared Python-int pack/unpack boundary at ~2.5-3.5x for n=64 (wide
    buses at n=256 reach 20-65x because the compiled backend loses its
    uint64 packing fast path there).  Floors are accel-aware: with the
    C transpose fast path (:mod:`repro.netlist._accel`, available
    wherever a system C compiler is) the floor is 2.3x at full scale —
    safely under the observed 2.6-3.4x band on shared runners; the
    pure-numpy fallback keeps a lower floor.  At 1024 vectors the
    vectorized backend must at least hold its ground (no regression).

    The ratio is taken over CPU time (``time.process_time``): on shared
    single-CPU runners wall-clock noise lands disproportionately on the
    faster backend and turns a hard floor flaky.
    """
    from repro.engine.elab import build_design
    from repro.netlist import _accel

    n_large = 4096 if full_scale() else 2048
    accel = _accel.load() is not None

    def compute():
        built = build_design("designware", WIDTH)
        circuit = getattr(built, "circuit", built)
        rows = {}
        for count in (1024, n_large):
            batch = _vectors(circuit, count, 41)
            # Untimed warmup: the first vectorized call pays one-time
            # plan/codegen/scratch costs, the first compiled call the
            # kernel compile.
            simulate_batch(circuit, batch, backend="compiled")
            simulate_batch(circuit, batch, backend="vectorized")
            t_cmp, out_cmp = _best_of(
                lambda: simulate_batch(circuit, batch, backend="compiled"),
                repeat=5, clock=time.process_time,
            )
            t_vec, out_vec = _best_of(
                lambda: simulate_batch(circuit, batch, backend="vectorized"),
                repeat=5, clock=time.process_time,
            )
            assert out_vec == out_cmp, "vectorized diverged from compiled"
            rows[count] = {"compiled_s": t_cmp, "vectorized_s": t_vec,
                           "ratio": t_cmp / t_vec}
        return rows

    r = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["vectors", "compiled", "vectorized", "ratio"],
            [
                (count, f"{row['compiled_s'] * 1e3:.2f} ms",
                 f"{row['vectorized_s'] * 1e3:.2f} ms",
                 f"{row['ratio']:.2f}x")
                for count, row in r.items()
            ],
            title=f"vectorized vs compiled, designware n={WIDTH} "
            f"(best of 5, C fast path {'on' if accel else 'off'})",
        )
    )
    if full_scale():
        floor = 2.3 if accel else 1.2
    else:
        floor = 1.5 if accel else 1.0
    ratio = r[n_large]["ratio"]
    assert ratio >= floor, (
        f"vectorized backend {ratio:.2f}x vs compiled at {n_large} vectors, "
        f"below the {floor:.1f}x floor"
    )
    assert r[1024]["ratio"] >= 0.9, (
        f"vectorized backend regressed at 1024 vectors "
        f"({r[1024]['ratio']:.2f}x vs compiled)"
    )
