"""Extension: what does VLCSA's error detector catch in *hardware*?

The thesis' detector exists to flag speculation errors, but the same ERR
signal observes the window group-G/P cone of the datapath — so it also
flags a fraction of physical (stuck-at) faults for free, turning the
variable-latency adder into a partially self-checking one.  This bench
quantifies that, plus the manufacturing-test quality of the emitted
self-checking testbench vectors.
"""

import random

from repro.analysis.report import format_table, percent
from repro.core import build_vlcsa1
from repro.netlist.faults import enumerate_faults, fault_coverage

from benchmarks.conftest import full_scale, run_once

WIDTH, K = 24, 6


def test_ext_fault_observability(benchmark):
    n_vectors = 256 if full_scale() else 96

    def compute():
        circuit = build_vlcsa1(WIDTH, K)
        gen = random.Random(13)
        vectors = {
            "a": [gen.randrange(1 << WIDTH) for _ in range(n_vectors)],
            "b": [gen.randrange(1 << WIDTH) for _ in range(n_vectors)],
        }
        faults = enumerate_faults(circuit)
        full = fault_coverage(circuit, vectors, faults=faults)
        spec_only = fault_coverage(circuit, vectors, observe=["sum"], faults=faults)
        err_only = fault_coverage(circuit, vectors, observe=["err"], faults=faults)
        rec_only = fault_coverage(circuit, vectors, observe=["sum_rec"], faults=faults)
        return {
            "faults": len(faults),
            "full": full.coverage,
            "sum": spec_only.coverage,
            "err": err_only.coverage,
            "sum_rec": rec_only.coverage,
        }

    r = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["observation point", "stuck-at coverage"],
            [
                ("all outputs (test mode)", percent(r["full"])),
                ("speculative sum only", percent(r["sum"])),
                ("recovery sum only", percent(r["sum_rec"])),
                ("ERR flag only (self-checking in operation)", percent(r["err"])),
            ],
            title=f"Extension — stuck-at fault observability of VLCSA 1 "
            f"(n={WIDTH}, k={K}, {r['faults']} faults, random vectors)",
        )
    )

    # random functional vectors make a strong manufacturing test
    assert r["full"] > 0.9
    # the ERR flag alone observes a nontrivial slice of the datapath:
    # faults in the window group-G/P cone flip the detector
    assert 0.05 < r["err"] < r["sum"]
    # recovery observes the prefix/select cone about as well as sum does
    assert r["sum_rec"] > 0.5
