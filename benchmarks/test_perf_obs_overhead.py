"""Performance: the observability layer must be free when disabled.

Every instrumented hot path (``CompiledSim.run_batch``, the fault
coverage chunk loop, the elaboration cache lookup) branches on a single
module-level flag and runs the original code verbatim when tracing is
off.  This benchmark times a compiled batch simulation with the obs
switch disabled against the same run with instrumentation calls active,
and asserts the disabled path stays within the PR's 5% overhead budget
(with generous slack at the reduced CI scale, where per-run jitter is a
visible fraction of the budget).
"""

import random
import time

from repro.analysis.report import format_table
from repro.core import build_vlcsa1
from repro.netlist.compile import compile_circuit
from repro.obs import spans as obs

from benchmarks.conftest import full_scale, run_once

WIDTH, K = 64, 8


def _vectors(circuit, count, seed):
    gen = random.Random(seed)
    return {
        name: [gen.getrandbits(len(nets)) for _ in range(count)]
        for name, nets in circuit.input_buses.items()
    }


def _best_of(fn, repeat=5):
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_perf_disabled_obs_overhead(benchmark):
    n_vectors = 2048 if full_scale() else 512

    def compute():
        circuit = build_vlcsa1(WIDTH, K)
        sim = compile_circuit(circuit)
        batch = _vectors(circuit, n_vectors, 41)
        sim.run_batch(batch)  # warm the kernel before timing

        obs.reset()
        assert not obs.is_enabled()
        t_off = _best_of(lambda: sim.run_batch(batch))
        obs.enable()
        try:
            t_on = _best_of(lambda: sim.run_batch(batch))
        finally:
            obs.disable()
            obs.reset()
        return {"disabled_s": t_off, "enabled_s": t_on,
                "overhead": t_on / t_off - 1.0}

    r = run_once(benchmark, compute)
    print()
    print(
        format_table(
            ["obs switch", "time", "overhead"],
            [
                ("disabled (default)", f"{r['disabled_s'] * 1e3:.2f} ms", "--"),
                ("enabled (--trace)", f"{r['enabled_s'] * 1e3:.2f} ms",
                 f"{r['overhead'] * 100:+.1f}%"),
            ],
            title=f"run_batch, VLCSA 1 n={WIDTH} k={K}, "
            f"{n_vectors} vectors (best of 5)",
        )
    )
    # The acceptance bound is 5% on the *disabled* path relative to the
    # pre-obs baseline.  The disabled path is the original code verbatim
    # behind one flag test, so the observable proxy is: enabling tracing
    # must cost something bounded (the spans are per *batch*, not per
    # gate), and the disabled path must never come out slower than the
    # enabled one beyond timing jitter.
    budget = 0.05 if full_scale() else 0.25
    assert r["enabled_s"] >= r["disabled_s"] * (1.0 - budget), (
        "enabled tracing measured faster than the disabled fast path; "
        "timing is unstable or the switch is not being honored"
    )
    ceiling = 0.50 if full_scale() else 1.50
    assert r["overhead"] <= ceiling, (
        f"enabled tracing costs {r['overhead'] * 100:.0f}% on a "
        f"batch-granular path; spans have leaked into a per-gate loop"
    )
