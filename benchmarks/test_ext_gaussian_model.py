"""Extension: a closed-form Gaussian error model (the thesis has none).

Thesis §6.7: "there is no analytical error rate model for 2's complement
Gaussian inputs" — Tables 7.1/7.2/7.5 are Monte Carlo only.  The
decomposition in :mod:`repro.model.gaussian_model` closes the gap:

    VLCSA 1:  P ≈ 1/4 + (act/k - 1) 2^-(k+1)     (act = log2(sigma) + 2)
    VLCSA 2:  P ≈       (act/k - 1) 2^-(k+1)

This bench validates both against Monte Carlo across window sizes *and*
sigma, and shows the analytic solver reproducing Table 7.5 with no
simulation at all.
"""


from repro.analysis.report import format_table, percent
from repro.analysis.statistics import wilson_interval
from repro.inputs.generators import gaussian_operands
from repro.model.behavioral import err0_flags, err1_flags, window_profile
from repro.model.gaussian_model import (
    vlcsa1_gaussian_error_rate,
    vlcsa2_gaussian_stall_rate,
    vlcsa2_gaussian_window_size_for,
)

from benchmarks.conftest import mc_samples, run_once

POINTS = [
    # (width, k, sigma exponent)
    (64, 14, 32),
    (64, 13, 32),
    (64, 9, 32),
    (128, 11, 24),
    (128, 11, 40),
    (256, 13, 32),
]


def test_ext_gaussian_analytic_model(benchmark, bench_rng):
    samples = mc_samples(1_000_000, 300_000)

    def compute():
        rows = []
        for n, k, s in POINTS:
            sigma = float(2 ** s)
            a = gaussian_operands(n, samples, sigma=sigma, rng=bench_rng)
            b = gaussian_operands(n, samples, sigma=sigma, rng=bench_rng)
            mc1_hits = int(err0_flags(window_profile(a, b, n, k, "lsb")).sum())
            p2 = window_profile(a, b, n, k, "msb")
            mc2_hits = int((err0_flags(p2) & err1_flags(p2)).sum())
            rows.append((n, k, s, mc1_hits, mc2_hits))
        return rows

    rows = run_once(benchmark, compute)
    samples_used = samples

    table = []
    for n, k, s, mc1_hits, mc2_hits in rows:
        sigma = float(2 ** s)
        m1 = vlcsa1_gaussian_error_rate(n, k, sigma)
        m2 = vlcsa2_gaussian_stall_rate(n, k, sigma)
        est1 = wilson_interval(mc1_hits, samples_used)
        est2 = wilson_interval(mc2_hits, samples_used)
        table.append(
            (
                n, k, f"2^{s}",
                percent(m1, 3), percent(est1.point, 3),
                percent(m2, 4), percent(est2.point, 4),
            )
        )
    print()
    print(
        format_table(
            ["n", "k", "sigma", "VLCSA1 model", "VLCSA1 MC",
             "VLCSA2 model", "VLCSA2 MC"],
            table,
            title="Extension — closed-form Gaussian error model vs Monte "
            "Carlo (thesis: no analytical model exists)",
        )
    )
    k_low = [vlcsa2_gaussian_window_size_for(n, 1e-4, float(2 ** 32))
             for n in (64, 128, 256, 512)]
    k_high = [vlcsa2_gaussian_window_size_for(n, 25e-4, float(2 ** 32))
              for n in (64, 128, 256, 512)]
    print(f"analytic Table 7.5: k@0.01% = {k_low} (paper 13,13,13,13), "
          f"k@0.25% = {k_high} (paper 9,9,9,9)")

    assert k_low == [13, 13, 13, 13]
    assert k_high == [9, 9, 9, 9]
    for n, k, s, mc1_hits, mc2_hits in rows:
        sigma = float(2 ** s)
        mc1 = mc1_hits / samples_used
        mc2 = mc2_hits / samples_used
        assert vlcsa1_gaussian_error_rate(n, k, sigma) == \
            __import__("pytest").approx(mc1, rel=0.05), (n, k, s)
        model2 = vlcsa2_gaussian_stall_rate(n, k, sigma)
        assert 0.5 * mc2 < model2 < 2.0 * max(mc2, 2e-5), (n, k, s)
