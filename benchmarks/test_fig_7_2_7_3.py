"""Figures 7.2/7.3: delay and area of the speculative adders vs Kogge-Stone.

Paper (0.01% error, parameters of Table 7.3):

* Fig 7.2 — SCSA 1 critical path 18-38% below Kogge-Stone; similar to the
  speculative adder inside VLSA.
* Fig 7.3 — SCSA 1 area 15-38% below Kogge-Stone and always below the
  VLSA speculative adder (window-level vs per-bit speculation).
"""

from repro.analysis.compare import (
    measure_kogge_stone,
    measure_scsa1,
    measure_vlsa_speculative,
)
from repro.analysis.report import format_table, percent, ratio
from repro.analysis.sizing import THESIS_TABLE_7_3

from benchmarks.conftest import run_once


def test_fig_7_2_7_3_speculative_vs_kogge_stone(benchmark):
    def compute():
        rows = []
        for n in sorted(THESIS_TABLE_7_3):
            k, l = THESIS_TABLE_7_3[n]
            rows.append(
                (
                    n,
                    measure_kogge_stone(n),
                    measure_scsa1(n, k),
                    measure_vlsa_speculative(n, l),
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "KS delay", "SCSA1 delay", "Δ vs KS", "VLSAsp delay",
             "KS area", "SCSA1 area", "Δ vs KS", "VLSAsp area"],
            [
                (
                    n,
                    f"{ks.delay:.3f}",
                    f"{s.delay:.3f}",
                    percent(ratio(s.delay, ks.delay)),
                    f"{v.delay:.3f}",
                    f"{ks.area:.0f}",
                    f"{s.area:.0f}",
                    percent(ratio(s.area, ks.area)),
                    f"{v.area:.0f}",
                )
                for n, ks, s, v in rows
            ],
            title="Figs 7.2/7.3 — speculative adders vs Kogge-Stone @0.01% "
            "(paper: delay -18..-38%, area -15..-38%)",
        )
    )

    for n, ks, scsa, vlsa_spec in rows:
        # Fig 7.2: SCSA 1 faster than KS; gap grows with width.
        assert scsa.delay < ks.delay, n
        # Fig 7.3: SCSA 1 smaller than KS and not larger than VLSA-spec.
        assert scsa.area < ks.area, n
        assert scsa.area <= vlsa_spec.area * 1.05, n
    # delay advantage grows with n (log k flat vs log n growing)
    gaps = [ratio(s.delay, ks.delay) for _, ks, s, _ in rows]
    assert gaps[-1] < gaps[0]
    assert gaps[-1] < -0.25  # >25% faster at n=512
