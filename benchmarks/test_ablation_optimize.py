"""Ablation: contribution of the virtual-synthesis passes.

Every headline delay/area number in this reproduction is measured after
the peephole optimizer and fanout-buffering pass (mirroring "circuits are
synthesized ... in the Synopsys Design Compiler").  This bench quantifies
what each stage contributes on the thesis' two central designs.
"""

from repro.adders import build_kogge_stone_adder
from repro.analysis.report import format_table, percent, ratio
from repro.core import build_scsa_adder, build_vlcsa1
from repro.netlist.area import area as circuit_area
from repro.netlist.optimize import buffer_fanout, optimize
from repro.netlist.timing import analyze_timing

from benchmarks.conftest import run_once

N, K = 256, 16


def _measure(circuit):
    return analyze_timing(circuit).critical_delay, circuit_area(circuit)


def test_ablation_optimizer_stages(benchmark):
    def compute():
        rows = []
        for name, builder in [
            ("kogge_stone_256", lambda: build_kogge_stone_adder(N)),
            ("scsa1_256_k16", lambda: build_scsa_adder(N, K)),
            ("vlcsa1_256_k16", lambda: build_vlcsa1(N, K)),
        ]:
            raw = builder()
            mapped, _ = optimize(raw, buffer_limit=None)
            full, _ = optimize(raw)  # mapping + fanout repair
            buffered_only = buffer_fanout(raw)
            rows.append(
                (
                    name,
                    _measure(raw),
                    _measure(mapped),
                    _measure(buffered_only),
                    _measure(full),
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["design", "raw d/a", "mapped d/a", "buffered d/a", "full d/a",
             "full vs raw delay", "full vs raw area"],
            [
                (
                    name,
                    f"{r[0]:.3f}/{r[1]:.0f}",
                    f"{m[0]:.3f}/{m[1]:.0f}",
                    f"{b[0]:.3f}/{b[1]:.0f}",
                    f"{f[0]:.3f}/{f[1]:.0f}",
                    percent(ratio(f[0], r[0])),
                    percent(ratio(f[1], r[1])),
                )
                for name, r, m, b, f in rows
            ],
            title="Ablation — virtual-synthesis pass contributions",
        )
    )

    for name, raw, mapped, buffered, full in rows:
        # mapping never hurts area; the full pipeline never hurts delay
        assert mapped[1] <= raw[1] * 1.001, name
        assert full[0] <= raw[0] * 1.001, name
        # the full pipeline is at least as fast as mapping alone
        assert full[0] <= mapped[0] * 1.02, name
