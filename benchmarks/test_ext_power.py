"""Extension: switching-activity power comparison of the adder designs.

The thesis situates variable-latency design among low-power techniques
(Ch. 2) but reports no power figures.  Measured finding (EXPERIMENTS.md):
although SCSA is smaller than Kogge-Stone, its two always-active sum
hypotheses toggle enough that its switched capacitance lands *near*
Kogge-Stone's — speculation buys delay and area, not dynamic power.
"""

import random

from repro.adders import build_brent_kung_adder, build_kogge_stone_adder, build_ripple_adder
from repro.analysis.report import format_table, ratio, percent
from repro.core import build_scsa_adder, build_vlcsa1
from repro.netlist.area import area as circuit_area
from repro.netlist.power import estimate_power

from benchmarks.conftest import mc_samples, run_once

WIDTH = 64
K = 14


def test_ext_power_comparison(benchmark):
    vectors = mc_samples(5000, 500)

    def compute():
        gen = random.Random(12)
        stream = {
            "a": [gen.randrange(1 << WIDTH) for _ in range(vectors)],
            "b": [gen.randrange(1 << WIDTH) for _ in range(vectors)],
        }
        designs = {
            "ripple": build_ripple_adder(WIDTH),
            "brent_kung": build_brent_kung_adder(WIDTH),
            "kogge_stone": build_kogge_stone_adder(WIDTH),
            "scsa1(k=14)": build_scsa_adder(WIDTH, K),
            "vlcsa1(k=14)": build_vlcsa1(WIDTH, K),
        }
        return {
            name: (estimate_power(c, stream).dynamic_power(), circuit_area(c))
            for name, c in designs.items()
        }

    results = run_once(benchmark, compute)

    ks_power = results["kogge_stone"][0]
    print()
    print(
        format_table(
            ["design", "dyn power (a.u.)", "vs KS", "area"],
            [
                (name, f"{p:.0f}", percent(ratio(p, ks_power)), f"{a:.0f}")
                for name, (p, a) in sorted(results.items())
            ],
            title=f"Extension — dynamic power on uniform streams "
            f"(n={WIDTH}, {vectors} vectors)",
        )
    )

    # stable orderings
    assert results["ripple"][0] < results["kogge_stone"][0]
    assert results["brent_kung"][0] < results["kogge_stone"][0]
    # the finding: SCSA's dual sum rows keep its power near KS despite
    # smaller area
    scsa_power = results["scsa1(k=14)"][0]
    assert 0.75 * ks_power < scsa_power < 1.35 * ks_power
    assert results["scsa1(k=14)"][1] < results["kogge_stone"][1]
    # the full VLCSA pays the recovery machinery's activity too
    assert results["vlcsa1(k=14)"][0] > scsa_power
