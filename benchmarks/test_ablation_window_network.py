"""Ablation: prefix-network choice inside the SCSA window adders.

The thesis picks Kogge-Stone for the window sub-adders ("the possible
fastest adder design", §4.1) but notes any traditional adder works.  This
sweep quantifies what Brent-Kung / Sklansky / Han-Carlson windows trade:
BK windows are markedly smaller at a modest delay cost — an attractive
point the thesis leaves on the table.
"""

from repro.analysis.compare import measure_kogge_stone
from repro.analysis.report import format_table, percent, ratio
from repro.core import build_scsa_adder
from repro.netlist.area import area as circuit_area
from repro.netlist.optimize import optimize
from repro.netlist.timing import analyze_timing

from benchmarks.conftest import run_once

NETWORKS = ("kogge_stone", "brent_kung", "sklansky", "han_carlson")
N, K = 256, 16  # thesis Table 7.4 @0.01%


def test_ablation_window_network(benchmark):
    def compute():
        rows = []
        for net in NETWORKS:
            c, _ = optimize(build_scsa_adder(N, K, network_name=net))
            rows.append(
                (net, analyze_timing(c).critical_delay, circuit_area(c))
            )
        return rows

    rows = run_once(benchmark, compute)
    ks = measure_kogge_stone(N)

    print()
    print(
        format_table(
            ["window network", "delay", "vs KS-256 adder", "area", "vs KS-256 adder"],
            [
                (net, f"{d:.3f}", percent(ratio(d, ks.delay)),
                 f"{a:.0f}", percent(ratio(a, ks.area)))
                for net, d, a in rows
            ],
            title=f"Ablation — SCSA 1 (n={N}, k={K}) window prefix networks",
        )
    )

    by_net = {net: (d, a) for net, d, a in rows}
    # Every variant still beats the full-width Kogge-Stone on both axes.
    for net, (d, a) in by_net.items():
        assert d < ks.delay, net
        assert a < ks.area, net
    # Brent-Kung windows are the area-lean point.
    assert by_net["brent_kung"][1] < by_net["kogge_stone"][1]
    # Kogge-Stone windows are never slower than Brent-Kung ones.
    assert by_net["kogge_stone"][0] <= by_net["brent_kung"][0] * 1.02
