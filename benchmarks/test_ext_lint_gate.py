"""Extension: the static-analysis gate over the paper's design grid.

The thesis argues correctness of the speculation/recovery contract
analytically and samples it with Monte Carlo; this gate *proves* it.  For
every architecture in the default lint set at n ∈ {16, 32, 64} (the
widths of Tables 7.3–7.5) the BDD-backed formal rules must certify:

* ``ERR = 0`` implies the speculative sum equals the exact sum (F001);
* the recovery bus always carries the exact sum (F002);
* VLCSA 2's two-hypothesis coverage (F003);

and the timing rule (T001) must confirm detection arrives no later than
the speculative sum on the *optimized* netlists — thesis Fig. 7.4's
premise.  A mutation pass then checks the checker: single stuck-at
faults injected into the detector cone must be flagged.  Finally, the
related-work VLSA design is pinned to its genuine T001 violation — the
linter independently rediscovering the thesis' argument for VLCSA.
"""

from repro.analysis.report import format_table
from repro.engine import LintJob, SweepPoint, run_job
from repro.engine.elab import LINTABLE_DESIGNS, build_design
from repro.netlist.lint import mutation_self_test, run_lint
from repro.netlist.optimize import optimize

from benchmarks.conftest import full_scale, run_once

WIDTHS = (16, 32, 64)


def test_lint_gate_grid_is_error_free(benchmark):
    def compute():
        points = tuple(
            SweepPoint(arch, width)
            for arch in LINTABLE_DESIGNS
            for width in WIDTHS
        )
        job = LintJob(points=points, use_cache=False)
        return run_job(job, workers=4).aggregate.ordered()

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["design", "n", "gates", "rules", "errors", "warnings"],
            [
                (
                    row["architecture"],
                    row["width"],
                    row["gates"],
                    len(row["rules_run"]),
                    row["counts"]["error"],
                    row["counts"]["warning"],
                )
                for row in rows
            ],
            title="formal + structural + timing lint gate (optimized netlists)",
        )
    )
    assert len(rows) == len(LINTABLE_DESIGNS) * len(WIDTHS)
    for row in rows:
        assert row["counts"]["error"] == 0, (
            f"{row['architecture']} n={row['width']}: {row['diagnostics']}"
        )
    # The speculative family actually exercised the formal rules.
    for row in rows:
        if row["architecture"].startswith("vlcsa"):
            assert "F001" in row["rules_run"]
            assert "F002" in row["rules_run"]
        if row["architecture"] == "vlcsa2":
            assert "F003" in row["rules_run"]


def test_lint_mutation_self_test(benchmark):
    mutants = 0 if full_scale() else 24  # 0 = unlimited (every cone fault)

    def compute():
        out = []
        for arch in ("vlcsa1", "vlcsa2"):
            circuit, _ = optimize(build_design(arch, 32))
            report = mutation_self_test(
                circuit, max_mutants=mutants or None
            )
            out.append((arch, report))
        return out

    results = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["design", "mutants", "killed", "kill %", "missed"],
            [
                (arch, r.total, r.killed, f"{100 * r.kill_fraction:.1f}",
                 len(r.missed))
                for arch, r in results
            ],
            title="mutation self-test of the formal rules (detector cone)",
        )
    )
    for arch, r in results:
        assert r.ok, f"{arch}: rules missed real detector faults: {r.missed}"
        assert r.killed > 0


def test_lint_rediscovers_vlsa_timing_flaw(benchmark):
    def compute():
        circuit, _ = optimize(build_design("vlsa", 64))
        return run_lint(circuit)

    report = run_once(benchmark, compute)
    t001 = [d for d in report.diagnostics if d.rule_id == "T001"]
    assert t001, "optimized VLSA@64 should fail the detection-timing contract"
    print(f"\n  {t001[0].message}")
