"""Figure 3.5: predicted SCSA error rates vs window size, per adder width.

Paper: error rate falls off a cliff as the window size grows; at n=256,
k=16 the predicted rate is ~0.01%.
"""

from repro.analysis.report import format_series
from repro.model.error_model import scsa_error_rate

from benchmarks.conftest import run_once

WIDTHS = (64, 128, 256, 512)
WINDOW_SIZES = list(range(4, 19))


def test_fig_3_5_predicted_error_rates(benchmark):
    def compute():
        return {
            n: [scsa_error_rate(n, k) for k in WINDOW_SIZES] for n in WIDTHS
        }

    rates = run_once(benchmark, compute)

    print()
    print(
        format_series(
            "k",
            WINDOW_SIZES,
            [(f"n={n}", rates[n]) for n in WIDTHS],
            title="Fig 3.5 — predicted SCSA error rate vs window size",
        )
    )
    print("paper anchor: n=256, k=16 -> ~0.01%   "
          f"measured: {rates[256][WINDOW_SIZES.index(16)]:.4%}")

    # Shape: monotone decreasing in k, increasing in n.
    for n in WIDTHS:
        assert rates[n] == sorted(rates[n], reverse=True)
    for i, k in enumerate(WINDOW_SIZES):
        column = [rates[n][i] for n in WIDTHS]
        assert column == sorted(column)
    # Anchor value from the thesis text (section 3.2).
    assert abs(rates[256][WINDOW_SIZES.index(16)] - 1e-4) < 2e-5
