"""Extension (thesis Ch. 8 future work): floating-point significand
addition.

The thesis' first future-work item is generalizing VLCSA to floating
point.  The carry-propagate adder inside an FP unit sees *aligned
significands* (larger operand left-aligned with its hidden 1; smaller
operand right-shifted by the exponent difference, complemented on
effective subtraction).  This bench profiles those operands and answers
the question the thesis left open:

**Finding**: alignment destroys the long sign-extension chain population
that breaks VLCSA 1 on 2's-complement integers — the aligned-operand
carry-chain profile is uniform-like, so plain VLCSA 1 already fits the FP
significand datapath; the VLCSA 2 machinery is unnecessary there.
"""


from repro.analysis.report import format_table, percent
from repro.inputs.floating import fp_significand_trace
from repro.inputs.generators import gaussian_operands
from repro.model.behavioral import err0_flags, err1_flags, window_profile
from repro.model.carry_chains import chain_length_histogram

from benchmarks.conftest import mc_samples, run_once


def test_ext_floating_point_significand_addition(benchmark, bench_rng):
    samples = mc_samples(1_000_000, 150_000)

    def compute():
        rows = []
        for fmt in ("binary32", "binary64"):
            trace = fp_significand_trace(samples, fmt=fmt, rng=bench_rng)
            hist = chain_length_histogram(trace.a, trace.b, trace.width)
            for k in (9, 11, 13):
                p1 = window_profile(trace.a, trace.b, trace.width, k, "lsb")
                p2 = window_profile(trace.a, trace.b, trace.width, k, "msb")
                stall1 = float(err0_flags(p1).mean())
                stall2 = float((err0_flags(p2) & err1_flags(p2)).mean())
                rows.append(
                    (fmt, trace.width, k, stall1, stall2,
                     float(hist[trace.width - 6:].sum()))
                )
        # integer Gaussian reference at matching width
        a = gaussian_operands(64, samples, rng=bench_rng)
        b = gaussian_operands(64, samples, rng=bench_rng)
        ref = float(err0_flags(window_profile(a, b, 64, 13, "lsb")).mean())
        return rows, ref

    rows, gaussian_ref = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["format", "adder width", "k", "VLCSA1 stall", "VLCSA2 stall",
             "near-full chains"],
            [
                (fmt, w, k, percent(s1, 3), percent(s2, 3), percent(tail, 3))
                for fmt, w, k, s1, s2, tail in rows
            ],
            title="Extension — FP significand addition (thesis future work); "
            f"integer 2's-comp Gaussian reference stall: {percent(gaussian_ref)}",
        )
    )

    for fmt, width, k, stall1, stall2, tail in rows:
        # no Gaussian-style near-full-width chain population
        assert tail < 0.01, fmt
        # VLCSA 1 is already far below its integer-Gaussian collapse
        assert stall1 < gaussian_ref / 10, (fmt, k)
    # at the design windows, stalls reach the sub-0.1% regime
    best1 = min(s1 for _, _, k, s1, _, _ in rows if k >= 11)
    assert best1 < 1e-3
