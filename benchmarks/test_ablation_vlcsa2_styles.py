"""Ablation: VLCSA 2 implementation styles (thesis §6.5 vs §6.7).

``dual``  — two full speculative buses, output select off the one-cycle
path (the Fig. 6.8 drawing + the §6.7 timing constraint).
``select`` — the S*0/S*1 choice folded into each window's select signal,
one extra mux per *window* (the §6.5 O(n/k) overhead claim).

Trade: ``select`` is smaller; ``dual`` keeps the one-cycle path free of
the serial ERR0 -> select dependency.
"""

from repro.analysis.compare import measure_vlcsa2
from repro.analysis.report import format_table, percent, ratio

from benchmarks.conftest import run_once

POINTS = [(64, 13), (128, 13), (256, 13), (512, 13)]


def test_ablation_vlcsa2_styles(benchmark):
    def compute():
        return [
            (n, k, measure_vlcsa2(n, k, style="dual"),
             measure_vlcsa2(n, k, style="select"))
            for n, k in POINTS
        ]

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "dual delay", "select delay", "Δ delay",
             "dual area", "select area", "Δ area", "dual gates", "select gates"],
            [
                (
                    n,
                    f"{d.delay:.3f}", f"{s.delay:.3f}",
                    percent(ratio(s.delay, d.delay)),
                    f"{d.area:.0f}", f"{s.area:.0f}",
                    percent(ratio(s.area, d.area)),
                    d.gates, s.gates,
                )
                for n, k, d, s in rows
            ],
            title="Ablation — VLCSA 2 dual-bus vs folded-select implementation",
        )
    )

    for n, k, dual, select in rows:
        # select saves area (drops one n-bit mux row for m select muxes) ...
        assert select.area < dual.area, n
        # ... at the cost of a serialized ERR0->select->sum one-cycle path.
        assert select.delay >= dual.delay * 0.98, n
