"""Figures 7.6/7.7: SCSA 1 (the speculative adder of VLCSA 1) versus the
DesignWare adder, at both error-rate targets.

Paper (window sizes of Table 7.4): SCSA 1 is ~10% faster than the
DesignWare adder at both 0.01% and 0.25%, with area 43% (up to 56%)
smaller; the 0.25% design is smaller than the 0.01% design — the
error-rate/area trade-off.  (Their -10% is a synthesis *constraint*; our
unconstrained STA shows larger speedups — EXPERIMENTS.md.)
"""

from repro.analysis.compare import measure_designware, measure_scsa1
from repro.analysis.report import format_table, percent, ratio
from repro.analysis.sizing import THESIS_TABLE_7_4

from benchmarks.conftest import run_once


def test_fig_7_6_7_7_scsa1_vs_designware(benchmark):
    def compute():
        rows = []
        for n in sorted(THESIS_TABLE_7_4):
            k_low, k_high = THESIS_TABLE_7_4[n]
            rows.append(
                (
                    n,
                    measure_designware(n),
                    measure_scsa1(n, k_low),
                    measure_scsa1(n, k_high),
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "DW delay", "SCSA@.01 d", "Δ", "SCSA@.25 d", "Δ",
             "DW area", "SCSA@.01 a", "Δ", "SCSA@.25 a", "Δ"],
            [
                (
                    n,
                    f"{dw.delay:.3f}",
                    f"{lo.delay:.3f}", percent(ratio(lo.delay, dw.delay)),
                    f"{hi.delay:.3f}", percent(ratio(hi.delay, dw.delay)),
                    f"{dw.area:.0f}",
                    f"{lo.area:.0f}", percent(ratio(lo.area, dw.area)),
                    f"{hi.area:.0f}", percent(ratio(hi.area, dw.area)),
                )
                for n, dw, lo, hi in rows
            ],
            title="Figs 7.6/7.7 — SCSA 1 vs DesignWare "
            "(paper: ~-10% delay; area up to -43% @0.01%, -21..-56% @0.25%)",
        )
    )

    for n, dw, low_err, high_err in rows:
        # Fig 7.6: faster than DesignWare at both operating points.
        assert low_err.delay < dw.delay, n
        assert high_err.delay < dw.delay, n
        # Fig 7.7: smaller than DesignWare, and 0.25% smaller than 0.01%.
        assert low_err.area < dw.area, n
        assert high_err.area < low_err.area, n
    # area advantage grows with width (paper: 'as the adder width
    # increases, the area ... can be 43% smaller')
    area_gap = [ratio(lo.area, dw.area) for _, dw, lo, _ in rows]
    assert area_gap[-1] < area_gap[0]
