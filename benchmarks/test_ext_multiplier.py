"""Extension (thesis Ch. 8 future work): speculative / variable-latency
multiplication and multi-operand addition.

The thesis proposes generalizing VLCSA to "multiplication and
multi-operand addition".  We build both on the carry-save substrate and
measure what the speculative final adder buys:

* delay — little: the Wallace tree and its arrival skew dominate, so the
  shorter carry-propagate tail barely moves the critical path;
* area — real: the speculative final adder's area win carries over;
* reliability — a VLCSA-final multiplier stalls at a rate governed by the
  final-adder *input* distribution, which is not uniform; the bench
  reports measured vs Eq. 3.13.
"""

import random

from repro.adders.multi_operand import build_multi_operand_adder
from repro.adders.multiplier import build_multiplier
from repro.analysis.report import format_table, percent
from repro.model.error_model import scsa_error_rate
from repro.netlist.area import area as circuit_area
from repro.netlist.optimize import optimize
from repro.netlist.simulate import simulate_batch
from repro.netlist.timing import analyze_timing

from benchmarks.conftest import mc_samples, run_once

WIDTH = 16      # multiplier operand width (32-bit product)
K = 8           # speculative window for the product-wide final adder
MADD_COUNT = 8  # multi-operand configuration: 8 x 32-bit operands
MADD_WIDTH = 32
MADD_K = 9


def test_ext_speculative_multiplication(benchmark):
    samples = mc_samples(200_000, 20_000)

    def compute():
        exact, _ = optimize(build_multiplier(WIDTH))
        spec, _ = optimize(build_multiplier(WIDTH, final_adder="scsa", window_size=K))
        vl = build_multiplier(WIDTH, final_adder="vlcsa1", window_size=K)

        gen = random.Random(8)
        av = [gen.randrange(1 << WIDTH) for _ in range(samples)]
        bv = [gen.randrange(1 << WIDTH) for _ in range(samples)]
        out = simulate_batch(vl, {"a": av, "b": bv})
        stalls = sum(out["err"])
        wrong = sum(
            1 for i in range(samples) if out["product"][i] != av[i] * bv[i]
        )
        for i in range(samples):
            assert out["product_rec"][i] == av[i] * bv[i]
            if not out["err"][i]:
                assert out["product"][i] == av[i] * bv[i]

        madd_exact, _ = optimize(build_multi_operand_adder(MADD_WIDTH, MADD_COUNT))
        madd_spec, _ = optimize(
            build_multi_operand_adder(
                MADD_WIDTH, MADD_COUNT, final_adder="scsa", window_size=MADD_K
            )
        )
        return {
            "exact": (analyze_timing(exact).critical_delay, circuit_area(exact)),
            "spec": (analyze_timing(spec).critical_delay, circuit_area(spec)),
            "stall_rate": stalls / samples,
            "error_rate": wrong / samples,
            "madd_exact": (
                analyze_timing(madd_exact).critical_delay,
                circuit_area(madd_exact),
            ),
            "madd_spec": (
                analyze_timing(madd_spec).critical_delay,
                circuit_area(madd_spec),
            ),
        }

    r = run_once(benchmark, compute)

    uniform_prediction = scsa_error_rate(2 * WIDTH, K)
    print()
    print(
        format_table(
            ["design", "delay", "area"],
            [
                (f"mul{WIDTH} exact final", f"{r['exact'][0]:.3f}", f"{r['exact'][1]:.0f}"),
                (f"mul{WIDTH} SCSA final (k={K})", f"{r['spec'][0]:.3f}", f"{r['spec'][1]:.0f}"),
                (f"madd {MADD_COUNT}x{MADD_WIDTH} exact final",
                 f"{r['madd_exact'][0]:.3f}", f"{r['madd_exact'][1]:.0f}"),
                (f"madd {MADD_COUNT}x{MADD_WIDTH} SCSA final",
                 f"{r['madd_spec'][0]:.3f}", f"{r['madd_spec'][1]:.0f}"),
            ],
            title="Extension — speculative multiplication / multi-operand addition",
        )
    )
    print(f"VLCSA-final multiplier: stall rate {percent(r['stall_rate'], 3)}, "
          f"product error rate {percent(r['error_rate'], 3)} "
          f"(Eq. 3.13 @ uniform {2 * WIDTH}-bit inputs: "
          f"{percent(uniform_prediction, 3)})")

    # area win carries over to both composite datapaths
    assert r["spec"][1] < r["exact"][1]
    assert r["madd_spec"][1] < r["madd_exact"][1]
    # delay roughly unchanged (Wallace tree dominates)
    assert r["spec"][0] <= r["exact"][0] * 1.05
    # the final-adder input distribution is NOT uniform: measured rate
    # differs from the uniform prediction but stays the same magnitude
    assert 0 < r["error_rate"] < 30 * uniform_prediction
    assert r["stall_rate"] >= r["error_rate"]
