"""Extension: VLCSA 1 vs VLCSA 2 stall rates on program-shaped operands.

The thesis evaluates Gaussian operands as a proxy for practical inputs
(Ch. 6.3).  This bench closes the loop with three application-shaped
traces (address arithmetic, audio DSP, loop counters) plus the
instrumented crypto kernels, measuring the stall rates both reliable
adders would pay on each.
"""


from repro.analysis.report import format_table, percent
from repro.inputs.crypto import rsa_trace
from repro.inputs.workloads import APPLICATION_TRACES
from repro.model.behavioral import err0_flags, err1_flags, window_profile

from benchmarks.conftest import mc_samples, run_once

WIDTH = 64
K1, K2 = 14, 13  # thesis Tables 7.4 / 7.5 @0.01%


def _rates(a, b, width=WIDTH):
    p1 = window_profile(a, b, width, K1, "lsb")
    p2 = window_profile(a, b, width, K2, "msb")
    return (
        float(err0_flags(p1).mean()),
        float((err0_flags(p2) & err1_flags(p2)).mean()),
    )


def test_ext_workload_stall_rates(benchmark, bench_rng):
    samples = mc_samples(1_000_000, 100_000)

    def compute():
        rows = []
        for name, fn in sorted(APPLICATION_TRACES.items()):
            a, b = fn(WIDTH, samples, rng=bench_rng)
            rows.append((name, *_rates(a, b)))
        trace = rsa_trace(limit=min(samples, 60_000))
        # crypto adds are 32-bit limb operations: evaluate at width 32
        p1 = window_profile(trace.a.reshape(-1, 1), trace.b.reshape(-1, 1), 32, 10, "lsb")
        p2 = window_profile(trace.a.reshape(-1, 1), trace.b.reshape(-1, 1), 32, 9, "msb")
        rows.append(
            (
                "crypto(RSA,32b)",
                float(err0_flags(p1).mean()),
                float((err0_flags(p2) & err1_flags(p2)).mean()),
            )
        )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["workload", "VLCSA 1 stall", "VLCSA 2 stall"],
            [(name, percent(s1, 3), percent(s2, 3)) for name, s1, s2 in rows],
            title="Extension — stall rates on application-shaped operand "
            "streams (VLCSA 1 k=14 LSB, VLCSA 2 k=13 MSB; crypto at 32b)",
        )
    )

    by_name = {name: (s1, s2) for name, s1, s2 in rows}
    # mixed-sign address arithmetic breaks VLCSA 1, VLCSA 2 holds
    assert by_name["address"][0] > 0.05
    assert by_name["address"][1] < by_name["address"][0] / 20
    # audio (signed small samples) likewise
    assert by_name["audio"][1] < max(by_name["audio"][0], 1e-9)
    # counters barely stall either design
    assert by_name["counter"][0] < 0.01
    # VLCSA 2 never does worse than VLCSA 1
    for name, s1, s2 in rows:
        assert s2 <= s1 + 1e-9, name
