"""Figures 7.10/7.11: VLCSA 2 versus the DesignWare adder.

Paper (Table 7.5 window sizes, 2's-complement Gaussian operands): the
single-cycle path of VLCSA 2 is ~10% below DesignWare (a synthesis
constraint their flow was able to meet); area requirement is +1..62%
@0.01% (-17..+29% @0.25%), larger than VLCSA 1's "due to additional
circuitry of speculative addition and error detection", improving with
width.

Reproduction note (EXPERIMENTS.md): without constraint-driven gate
sizing, our unconstrained STA puts VLCSA 2's detection-bound single-cycle
path near parity with DesignWare at large widths and above it at small
widths; the area ordering and the VLCSA2-costs-more-than-VLCSA1 shape
reproduce.
"""

from repro.analysis.compare import (
    measure_designware,
    measure_vlcsa1,
    measure_vlcsa2,
)
from repro.analysis.report import format_table, percent, ratio
from repro.analysis.sizing import THESIS_TABLE_7_4, THESIS_TABLE_7_5
from repro.model.latency import VariableLatencyTiming

from benchmarks.conftest import run_once


def test_fig_7_10_7_11_vlcsa2_vs_designware(benchmark):
    def compute():
        rows = []
        for n in sorted(THESIS_TABLE_7_5):
            k_low, k_high = THESIS_TABLE_7_5[n]
            rows.append(
                (
                    n,
                    measure_designware(n),
                    measure_vlcsa1(n, THESIS_TABLE_7_4[n][0]),
                    measure_vlcsa2(n, k_low),
                    measure_vlcsa2(n, k_high),
                )
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "DW d", "VLCSA2 d", "Δd", "rec",
             "area@.01", "Δ", "area@.25", "Δ", "VLCSA1 area"],
            [
                (
                    n,
                    f"{dw.delay:.3f}",
                    f"{lo.delay:.3f}", percent(ratio(lo.delay, dw.delay)),
                    f"{lo.t_recover:.3f}",
                    f"{lo.area:.0f}", percent(ratio(lo.area, dw.area)),
                    f"{hi.area:.0f}", percent(ratio(hi.area, dw.area)),
                    f"{v1.area:.0f}",
                )
                for n, dw, v1, lo, hi in rows
            ],
            title="Figs 7.10/7.11 — VLCSA 2 vs DesignWare "
            "(paper: -10% delay by synthesis constraint; area +1..62% "
            "@0.01%, -17..+29% @0.25%)",
        )
    )

    for n, dw, vlcsa1, low_err, high_err in rows:
        # Delay: within ~±20% of DesignWare (see module docstring); the
        # recovery path still fits two single-cycle periods.
        assert low_err.delay < 1.2 * dw.delay, n
        t = VariableLatencyTiming(
            low_err.t_spec, low_err.t_detect, low_err.t_recover
        )
        assert t.recovery_fits_two_cycles, n
        # Fig 7.11 shapes: VLCSA 2 costs more than VLCSA 1; the 0.25%
        # design is smaller than the 0.01% one.
        assert low_err.area > vlcsa1.area * 0.95, n
        assert high_err.area < low_err.area, n
    # area requirement vs DW improves with width (paper's trend)
    gaps = [ratio(lo.area, dw.area) for _, dw, _, lo, _ in rows]
    assert gaps[-1] < gaps[0]
    # delay gap vs DW narrows with width (approaches the paper's claim)
    dgaps = [ratio(lo.delay, dw.delay) for _, dw, _, lo, _ in rows]
    assert dgaps[-1] < dgaps[0]
