"""Figures 7.4/7.5: delay and area of the variable-latency adders vs
Kogge-Stone.

Paper (0.01% error, parameters of Table 7.3):

* Fig 7.4 — VLSA's detection path is longer than its speculative path
  (4-8%), eating the speculation benefit; VLCSA 1's detection is no longer
  than its speculation, and VLCSA 1's single-cycle path is 6-19% below
  VLSA's.  Recovery stays under two cycles for both.
* Fig 7.5 — VLSA is 14-32% *larger* than Kogge-Stone; VLCSA 1 is -6..17%
  (i.e. can undercut KS, notably at 512 bits).
"""

from repro.analysis.compare import measure_kogge_stone, measure_vlcsa1, measure_vlsa
from repro.analysis.report import format_table, percent, ratio
from repro.analysis.sizing import THESIS_TABLE_7_3
from repro.model.latency import VariableLatencyTiming

from benchmarks.conftest import run_once


def test_fig_7_4_7_5_variable_latency_vs_kogge_stone(benchmark):
    def compute():
        rows = []
        for n in sorted(THESIS_TABLE_7_3):
            k, l = THESIS_TABLE_7_3[n]
            rows.append(
                (n, measure_kogge_stone(n), measure_vlcsa1(n, k), measure_vlsa(n, l))
            )
        return rows

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "KS", "VLSA sp/det/rec", "VLCSA1 sp/det/rec",
             "VLCSA1 vs VLSA", "KS area", "VLSA area", "VLCSA1 area",
             "VLCSA1 vs KS"],
            [
                (
                    n,
                    f"{ks.delay:.3f}",
                    f"{v.t_spec:.3f}/{v.t_detect:.3f}/{v.t_recover:.3f}",
                    f"{c.t_spec:.3f}/{c.t_detect:.3f}/{c.t_recover:.3f}",
                    percent(ratio(c.delay, v.delay)),
                    f"{ks.area:.0f}",
                    f"{v.area:.0f}",
                    f"{c.area:.0f}",
                    percent(ratio(c.area, ks.area)),
                )
                for n, ks, c, v in rows
            ],
            title="Figs 7.4/7.5 — variable-latency adders vs Kogge-Stone "
            "(paper: VLCSA1 delay 6-19% under VLSA; VLSA area +14..32% "
            "over KS, VLCSA1 -6..+17%)",
        )
    )

    for n, ks, vlcsa1, vlsa in rows:
        # VLSA's detection dominates its speculation (the thesis' critique).
        assert vlsa.t_detect >= 0.95 * vlsa.t_spec, n
        # VLCSA 1 single-cycle faster than VLSA's, both below KS.
        assert vlcsa1.delay < vlsa.delay, n
        assert vlcsa1.delay < ks.delay, n
        # Fig 7.5: VLSA pays area over KS, VLCSA 1 does not (at scale).
        assert vlsa.area > ks.area, n
        assert vlcsa1.area < vlsa.area, n
        # recovery fits in two cycles for both designs
        for m in (vlcsa1, vlsa):
            t = VariableLatencyTiming(m.t_spec, m.t_detect, m.t_recover)
            assert t.recovery_fits_two_cycles, (n, m.name)
    # VLCSA 1 undercuts KS area at the largest width (paper: -6% at 512)
    n, ks, vlcsa1, _ = rows[-1]
    assert vlcsa1.area < ks.area
