"""Section 3.3: error-magnitude analysis of speculative addition.

Paper (qualitative, one worked example each): SCSA's errors are a single
dropped boundary carry, so the example error is 1/2^7 ≈ 0.8% of the
result, "quite small"; individual-output speculation can instead be off by
the MSB's significance, "as large as ... 50.2%".

We *measure* both schemes' relative-error distributions on the same
uniform stream at matched speculation depth.  Measured finding (recorded
in EXPERIMENTS.md): both schemes' errors telescope to dropped carries, so
their medians are comparably small; SCSA's distinguishing structural
property — every error is an exact sum of window-boundary powers of two,
always an underestimate — is verified rather than a magnitude advantage.
"""

import numpy as np

from repro.analysis.report import format_table, percent
from repro.inputs.generators import uniform_operands
from repro.model.error_magnitude import (
    scsa1_magnitude_stats,
    scsa1_speculative_values,
    vlsa_magnitude_stats,
)

from benchmarks.conftest import mc_samples, run_once

WIDTH = 48
DEPTHS = (6, 8, 10)  # matched window size / chain length


def test_sec_3_3_error_magnitudes(benchmark, bench_rng):
    samples = mc_samples(2_000_000, 300_000)

    def compute():
        a = uniform_operands(WIDTH, samples, bench_rng)
        b = uniform_operands(WIDTH, samples, bench_rng)
        rows = []
        for depth in DEPTHS:
            scsa = scsa1_magnitude_stats(a, b, WIDTH, depth)
            vlsa = vlsa_magnitude_stats(a, b, WIDTH, depth)
            rows.append((depth, scsa, vlsa))
        # structural property: SCSA speculation never overshoots
        spec = scsa1_speculative_values(a, b, WIDTH, DEPTHS[0])
        true = a[:, 0].astype(np.float64) + b[:, 0].astype(np.float64)
        undershoot_only = bool(np.all(spec.astype(np.float64) <= true))
        return rows, undershoot_only

    rows, undershoot_only = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["k=l", "SCSA err rate", "SCSA median rel", "SCSA max rel",
             "VLSA err rate", "VLSA median rel", "VLSA max rel"],
            [
                (
                    d,
                    percent(s.error_rate, 3),
                    f"{s.median_relative:.2e}",
                    f"{s.max_relative:.2e}",
                    percent(v.error_rate, 3),
                    f"{v.median_relative:.2e}",
                    f"{v.max_relative:.2e}",
                )
                for d, s, v in rows
            ],
            title=f"§3.3 — relative error of erroneous results "
            f"(n={WIDTH}, uniform, {samples} samples)",
        )
    )
    print(f"SCSA errors are always underestimates: {undershoot_only}")

    assert undershoot_only
    for depth, scsa, vlsa in rows:
        # typical errors are small for both schemes (the thesis' point
        # that speculative errors are tolerable for approximate use)
        assert scsa.median_relative < 0.02, depth
        assert vlsa.median_relative < 0.02, depth
        # SCSA makes fewer errors than per-bit speculation at matched depth
        assert scsa.error_rate < vlsa.error_rate, depth
