"""Figure 6.2: carry-chain statistics of cryptographic workloads.

Paper (from Cilardo DATE'09, thesis ref [6]): RSA, DH, EC ElGamal, and
ECDSA addition streams show carry chains concentrated in two ranges —
plenty of short chains plus a clearly visible population of very long
chains that uniform operands essentially never produce.  The original
traces are not public; we regenerate the operand streams by running the
same algorithms on the instrumented bignum layer (DESIGN.md section 1).
"""

from repro.analysis.report import format_series
from repro.inputs.crypto import WORKLOADS
from repro.inputs.generators import uniform_operands
from repro.model.carry_chains import chain_length_histogram

from benchmarks.conftest import full_scale, run_once

WIDTH = 32


def test_fig_6_2_crypto_chain_histograms(benchmark, bench_rng):
    limit = 400_000 if full_scale() else 60_000

    def compute():
        hists = {}
        for name, fn in WORKLOADS.items():
            trace = fn(limit=limit)
            hists[name] = chain_length_histogram(trace.a, trace.b, WIDTH)
        return hists

    hists = run_once(benchmark, compute)

    lengths = list(range(1, WIDTH + 1))
    print()
    print(
        format_series(
            "len",
            lengths,
            [(name, hists[name][1:]) for name in hists],
            title="Fig 6.2 — carry-chain histograms, instrumented crypto "
            "kernels (regenerated; paper used the traces of [6])",
        )
    )

    # Uniform tail mass as the null reference.
    a = uniform_operands(WIDTH, 100_000, bench_rng)
    b = uniform_operands(WIDTH, 100_000, bench_rng)
    uniform_tail = chain_length_histogram(a, b, WIDTH)[20:].sum()

    for name, hist in hists.items():
        # short chains dominate ...
        assert hist[1:6].sum() > 0.5, name
        # ... but the long-chain population is far above the uniform tail
        assert hist[20:].sum() > 20 * max(uniform_tail, 1e-7), name
