"""Table 7.5: VLCSA 2 window sizes for 2's-complement Gaussian inputs.

Paper (mu = 0, sigma = 2^32): k = 13 for 0.01% and k = 9 for 0.25%, at
*every* width — the Gaussian active region (set by sigma), not the adder
width, determines the stall rate.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.sizing import THESIS_TABLE_7_5, vlcsa2_window_size_for

from benchmarks.conftest import mc_samples, run_once


def test_tab_7_5_vlcsa2_window_sizes(benchmark):
    samples = mc_samples(1_000_000, 200_000)

    def compute():
        rng = np.random.default_rng(75)
        return [
            (
                n,
                vlcsa2_window_size_for(n, 1e-4, samples=samples, rng=rng),
                vlcsa2_window_size_for(n, 25e-4, samples=samples, rng=rng),
            )
            for n in sorted(THESIS_TABLE_7_5)
        ]

    rows = run_once(benchmark, compute)

    print()
    print(
        format_table(
            ["n", "k@0.01% paper", "ours", "k@0.25% paper", "ours"],
            [
                (n, THESIS_TABLE_7_5[n][0], k_low, THESIS_TABLE_7_5[n][1], k_high)
                for n, k_low, k_high in rows
            ],
            title="Table 7.5 — VLCSA 2 window sizes (Monte Carlo solver, "
            "MSB remainder placement)",
        )
    )

    k_lows = [k for _, k, _ in rows]
    k_highs = [k for _, _, k in rows]
    for n, k_low, k_high in rows:
        assert abs(k_low - THESIS_TABLE_7_5[n][0]) <= 1, n
        assert abs(k_high - THESIS_TABLE_7_5[n][1]) <= 1, n
        assert k_high < k_low
    # width independence (the table's striking feature)
    assert max(k_lows) - min(k_lows) <= 1
    assert max(k_highs) - min(k_highs) <= 1
