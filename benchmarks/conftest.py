"""Shared infrastructure for the experiment-regeneration benchmarks.

Every benchmark regenerates one table or figure of the thesis' evaluation
(Ch. 7, plus the Ch. 3/6 figures its arguments rest on), prints the
measured rows next to the paper's numbers, and asserts the qualitative
shape.  Run them with::

    pytest benchmarks/ --benchmark-only

Monte Carlo sample counts default to a laptop-friendly scale; set
``REPRO_FULL_SCALE=1`` to use the thesis' own counts (10^7 uniform /
10^6 Gaussian samples).
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def mc_samples(paper_count: int, reduced: int) -> int:
    """The thesis' sample count, or the reduced default."""
    return paper_count if full_scale() else reduced


@pytest.fixture
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(20120320)


def run_once(benchmark, fn):
    """Benchmark an experiment exactly once (they are minutes-scale at
    full scale; statistical timing repetition is meaningless here)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
