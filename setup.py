"""Setup shim so `pip install -e .` works offline (no wheel package available).

Metadata lives in pyproject.toml; this file only enables the legacy editable
install path in environments without network access or the `wheel` package.
"""
from setuptools import setup

setup()
