"""Quickstart: build, exercise, and report on a reliable variable-latency
carry select adder (VLCSA 1, thesis Ch. 5).

Run with::

    python examples/quickstart.py
"""

from repro import (
    analyze_timing,
    area,
    build_kogge_stone_adder,
    build_vlcsa1,
    check_circuit,
    simulate,
    to_verilog,
)
from repro.model.latency import VariableLatencyTiming, average_cycle
from repro.model.error_model import scsa_error_rate


def main() -> None:
    width, window = 64, 14  # thesis Table 7.4 operating point @0.01% error

    # 1. Build the netlist and validate its structure.
    adder = build_vlcsa1(width, window)
    check_circuit(adder)
    print(f"built {adder.name}: {adder.num_gates} gates")

    # 2. A clean addition completes in one cycle (err = 0).
    out = simulate(adder, {"a": 123_456_789, "b": 987_654_321})
    assert out["err"] == 0
    assert out["sum"] == 123_456_789 + 987_654_321
    print(f"1-cycle add: 123456789 + 987654321 = {out['sum']} (err={out['err']})")

    # 3. A long cross-window carry chain stalls; recovery is exact.
    a, b = (1 << 40) - 1, 1  # generate at bit 0, propagates to bit 40
    out = simulate(adder, {"a": a, "b": b})
    assert out["err"] == 1
    assert out["sum_rec"] == a + b
    print(f"2-cycle add: {a:#x} + 1 stalls (err=1), recovery = {out['sum_rec']:#x}")

    # 4. Timing/area report: the three paths of Fig. 7.4.
    report = analyze_timing(adder)
    t_spec = report.bus_delay("sum")
    t_detect = report.bus_delay("err")
    t_recover = report.bus_delay("sum_rec")
    print(f"paths: speculative {t_spec:.3f}  detection {t_detect:.3f}  "
          f"recovery {t_recover:.3f}  (ns-like units)")
    print(f"area: {area(adder):.0f} µm²-like "
          f"(Kogge-Stone reference: {area(build_kogge_stone_adder(width)):.0f})")

    # 5. Average latency per thesis Eq. 5.2.
    timing = VariableLatencyTiming(t_spec, t_detect, t_recover)
    p_err = scsa_error_rate(width, window)
    print(f"error rate (Eq. 3.13): {p_err:.4%}; "
          f"average cycle: {average_cycle(timing, p_err):.4f} "
          f"vs clock {timing.t_clk:.4f}")

    # 6. Export synthesizable Verilog (core plus a clocked shell).
    verilog = to_verilog(adder)
    print(f"Verilog export: {len(verilog.splitlines())} lines "
          f"(write with repro.rtl.write_verilog; clocked shell via "
          f"repro.rtl.to_sequential_wrapper)")

    # 7. Run the complete clocked machine at gate level (16 bits for speed).
    from repro.core import PipelinedAdder

    pipe = PipelinedAdder(16, 4)
    stream = [(100, 200), ((1 << 12) - 1, 1), (7, 8)]  # middle one stalls
    results, stats = pipe.run_stream(stream)
    assert results == [a + b for a, b in stream]
    print(f"gate-level pipeline: {stats.operations} ops in {stats.cycles} "
          f"cycles ({stats.stall_cycles} stall)")


if __name__ == "__main__":
    main()
