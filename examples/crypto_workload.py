"""VLCSA 1 vs VLCSA 2 on realistic operand streams (thesis Ch. 6-7).

Profiles the carry-chain statistics of instrumented cryptographic kernels
(the Fig. 6.2 workload class) and of 2's-complement Gaussian operands,
then pushes both streams through the cycle-accurate variable-latency
simulator to show why VLCSA 1 collapses — and VLCSA 2 does not — on
practical inputs.

Run with::

    python examples/crypto_workload.py
"""

import numpy as np

from repro import GAUSSIAN_SIGMA_THESIS, WORKLOADS, gaussian_operands
from repro.analysis.compare import measure_designware, measure_vlcsa1, measure_vlcsa2
from repro.model.behavioral import (
    err0_flags,
    err1_flags,
    window_profile,
)
from repro.model.carry_chains import chain_length_histogram
from repro.model.latency import VariableLatencyAdderSim, VariableLatencyTiming

WIDTH = 64
K1, K2 = 14, 13  # thesis Tables 7.4 / 7.5 @ 0.01%
STREAM = 200_000


def profile_crypto_chains() -> None:
    print("carry-chain profile of instrumented crypto kernels (32-bit adds):")
    for name, fn in WORKLOADS.items():
        trace = fn(limit=40_000)
        hist = chain_length_histogram(trace.a, trace.b, 32)
        print(f"  {name:7s} len1-4: {np.round(hist[1:5], 3)}  "
              f"len>=20: {hist[20:].sum():.3%}  ({len(trace)} adds)")
    print("  -> short chains dominate, but the long-chain mass is far above")
    print("     anything uniform operands produce (thesis Fig. 6.2).\n")


def compare_on_gaussian_stream() -> None:
    rng = np.random.default_rng(7)
    a = gaussian_operands(WIDTH, STREAM, sigma=GAUSSIAN_SIGMA_THESIS, rng=rng)
    b = gaussian_operands(WIDTH, STREAM, sigma=GAUSSIAN_SIGMA_THESIS, rng=rng)

    stall1 = err0_flags(window_profile(a, b, WIDTH, K1, "lsb"))
    p2 = window_profile(a, b, WIDTH, K2, "msb")
    stall2 = err0_flags(p2) & err1_flags(p2)

    m1 = measure_vlcsa1(WIDTH, K1)
    m2 = measure_vlcsa2(WIDTH, K2)
    dw = measure_designware(WIDTH)

    sim1 = VariableLatencyAdderSim(
        VariableLatencyTiming(m1.t_spec, m1.t_detect, m1.t_recover)
    ).run(stall1)
    sim2 = VariableLatencyAdderSim(
        VariableLatencyTiming(m2.t_spec, m2.t_detect, m2.t_recover)
    ).run(stall2)

    print(f"2's-complement Gaussian stream (mu=0, sigma=2^32, {STREAM} adds):")
    print(f"  VLCSA 1 (k={K1}): stall rate {sim1.stall_rate:8.4%}  "
          f"cycles/add {sim1.cycles_per_add:.4f}  "
          f"avg latency {sim1.average_latency:.4f}")
    print(f"  VLCSA 2 (k={K2}): stall rate {sim2.stall_rate:8.4%}  "
          f"cycles/add {sim2.cycles_per_add:.4f}  "
          f"avg latency {sim2.average_latency:.4f}")
    gain = 1 - sim2.average_latency / sim1.average_latency
    print(f"  VLCSA 2 is {gain:.1%} faster on this stream "
          f"(DesignWare fixed-latency reference: {dw.delay:.4f})")
    print("  -> VLCSA 1 stalls on one addition in four (thesis Table 7.1);")
    print("     VLCSA 2's second hypothesis absorbs the sign-extension chains")
    print("     (thesis Table 7.2), restoring effectively one-cycle latency.")
    assert sim2.stall_rate < sim1.stall_rate / 100
    assert sim2.average_latency < sim1.average_latency


def main() -> None:
    profile_crypto_chains()
    compare_on_gaussian_stream()


if __name__ == "__main__":
    main()
