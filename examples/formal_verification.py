"""Formal verification of the reliability claims with BDDs.

The thesis argues VLCSA is "error-free" (Ch. 5) from the structure of its
detection and recovery.  This example *proves* the claims with the
built-in ROBDD engine instead of sampling them:

1. the recovery bus of VLCSA 1/2 is formally the exact sum;
2. the speculative bus is formally NOT the exact sum, and the engine
   extracts a concrete counterexample (which is exactly a cross-window
   carry chain);
3. all conventional adder generators are formally equivalent;
4. the peephole optimizer's rewrites are sound.

Run with::

    python examples/formal_verification.py
"""

from repro import (
    build_kogge_stone_adder,
    build_scsa_adder,
    build_vlcsa1,
    build_vlcsa2,
    optimize,
    simulate,
)
from repro.adders import ADDER_GENERATORS
from repro.netlist.bdd import prove_equivalent

WIDTH = 32
WINDOW = 8


def main() -> None:
    ks = build_kogge_stone_adder(WIDTH)

    # 1. Recovery is exact — as a theorem over all 2^64 input pairs.
    for build in (build_vlcsa1, build_vlcsa2):
        design = build(WIDTH, WINDOW)
        result = prove_equivalent(design, ks, buses=[("sum_rec", "sum")])
        assert result.equivalent
        print(f"PROVED  {design.name}.sum_rec == exact sum (all 2^{2 * WIDTH} inputs)")

    # 2. Speculation is not exact; extract and check a counterexample.
    scsa = build_scsa_adder(WIDTH, WINDOW)
    result = prove_equivalent(scsa, ks)
    assert not result.equivalent
    a = result.counterexample["a"]
    b = result.counterexample["b"]
    spec = simulate(scsa, {"a": a, "b": b})["sum"]
    print(f"PROVED  {scsa.name}.sum != exact sum;")
    print(f"        counterexample a={a:#x} b={b:#x}: speculative {spec:#x}, "
          f"true {a + b:#x}")
    print(f"        (a cross-window carry chain, exactly the thesis' Fig. 3.4 event)")

    # 3. Every conventional generator computes the same function.
    for name, gen in sorted(ADDER_GENERATORS.items()):
        result = prove_equivalent(ks, gen(WIDTH))
        assert result.equivalent
        print(f"PROVED  kogge_stone == {name} at {WIDTH} bits")

    # 4. The optimizer is sound on the full VLCSA 2 netlist.
    vlcsa2 = build_vlcsa2(WIDTH, WINDOW)
    optimized, stats = optimize(vlcsa2)
    result = prove_equivalent(vlcsa2, optimized)
    assert result.equivalent
    print(f"PROVED  optimize() preserved all {len(vlcsa2.output_buses)} output "
          f"buses of {vlcsa2.name} "
          f"(gate count {stats.gates_before} -> {stats.gates_after}, "
          f"including fanout-repair buffers)")


if __name__ == "__main__":
    main()
