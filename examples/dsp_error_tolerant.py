"""Error-tolerant DSP with the bare SCSA speculative adder (thesis Ch. 3-4).

The thesis motivates SCSA for "applications where errors are tolerable,
such as ... signal processing": when a speculative addition goes wrong the
error magnitude is tiny (section 3.3), so a filter built on SCSA barely
moves while the adder is ~30% faster and smaller than an exact one.

This example runs a moving-average filter over a noisy sine wave twice —
once with exact additions, once accumulating through a gate-level SCSA —
and reports error rate, worst relative error, and output SNR.

Run with::

    python examples/dsp_error_tolerant.py
"""

import math

import numpy as np

from repro import build_scsa_adder, simulate_batch
from repro.analysis.compare import measure_kogge_stone, measure_scsa1


WIDTH = 64
WINDOW = 10  # aggressive enough that errors are visible over ~14k adds
TAPS = 8
SAMPLES = 2048


def synthesize_signal() -> np.ndarray:
    """Noisy sine, scaled into unsigned ~29-bit samples."""
    rng = np.random.default_rng(42)
    t = np.arange(SAMPLES)
    clean = np.sin(2 * math.pi * t / 128.0)
    noisy = clean + 0.05 * rng.standard_normal(SAMPLES)
    # Scale so the accumulator tops out near 2^31: plenty of headroom
    # between the data MSB and the highest window boundary, which is what
    # keeps speculative error magnitudes tiny (thesis section 3.3).
    return ((noisy + 2.0) * (1 << 28)).astype(np.int64)


def moving_average_exact(signal: np.ndarray) -> np.ndarray:
    out = np.convolve(signal, np.ones(TAPS, dtype=np.int64), mode="valid")
    return out // TAPS


def moving_average_speculative(signal: np.ndarray, adder) -> np.ndarray:
    """Accumulate each TAPS-window through the gate-level SCSA netlist."""
    acc = [int(v) for v in signal[: SAMPLES - TAPS + 1]]
    # accumulate tap j into every window position, batched per tap
    for j in range(1, TAPS):
        addend = [int(v) for v in signal[j: j + len(acc)]]
        sums = simulate_batch(adder, {"a": acc, "b": addend})["sum"]
        acc = [s & ((1 << WIDTH) - 1) for s in sums]
    return np.array(acc, dtype=np.int64) // TAPS


def main() -> None:
    adder = build_scsa_adder(WIDTH, WINDOW)
    signal = synthesize_signal()

    exact = moving_average_exact(signal)
    speculative = moving_average_speculative(signal, adder)

    wrong = np.count_nonzero(exact != speculative)
    total_adds = (TAPS - 1) * len(exact)
    rel_err = np.abs(exact - speculative) / np.maximum(exact, 1)
    noise_power = float(np.mean((exact - speculative) ** 2))
    signal_power = float(np.mean(exact.astype(float) ** 2))
    snr_db = (
        10 * math.log10(signal_power / noise_power) if noise_power else math.inf
    )

    print(f"SCSA({WIDTH}, k={WINDOW}) moving-average filter, {TAPS} taps")
    print(f"  additions executed:          {total_adds}")
    print(f"  filter outputs affected:     {wrong} / {len(exact)}")
    print(f"  worst relative output error: {rel_err.max():.2e}")
    print(f"  output SNR vs exact filter:  {snr_db:.1f} dB")

    ks = measure_kogge_stone(WIDTH)
    sc = measure_scsa1(WIDTH, WINDOW)
    print(f"  exact adder (Kogge-Stone):   delay {ks.delay:.3f}, area {ks.area:.0f}")
    print(f"  speculative adder (SCSA):    delay {sc.delay:.3f}, area {sc.area:.0f}")
    print(f"  -> {100 * (1 - sc.delay / ks.delay):.0f}% faster, "
          f"{100 * (1 - sc.area / ks.area):.0f}% smaller, "
          f"for {snr_db:.0f} dB of accuracy")

    assert snr_db > 55, "speculative filter should be audibly transparent"


if __name__ == "__main__":
    main()
