"""Design-space exploration: choosing a window size (thesis Ch. 7.5).

Sweeps the SCSA window size at a fixed adder width, printing the
error/delay/area frontier against the Kogge-Stone and DesignWare
baselines, then solves the thesis' two operating points (0.01% and 0.25%)
and quantifies the trade the thesis highlights: "if the error rate is
0.25% instead of 0.01%, on average, we can save 17% area by increasing
0.12% average cycle."

Run with::

    python examples/design_space.py [width]
"""

import sys

from repro import scsa_window_size_for
from repro.analysis.compare import (
    measure_designware,
    measure_kogge_stone,
    measure_vlcsa1,
)
from repro.analysis.report import format_table, percent, ratio
from repro.model.error_model import scsa_error_rate
from repro.model.latency import VariableLatencyTiming, average_cycle


def sweep(width: int) -> None:
    ks = measure_kogge_stone(width)
    dw = measure_designware(width)
    print(f"baselines @ n={width}:  Kogge-Stone delay {ks.delay:.3f} / "
          f"area {ks.area:.0f};  DesignWare delay {dw.delay:.3f} / "
          f"area {dw.area:.0f}\n")

    rows = []
    for k in range(6, 22, 2):
        m = measure_vlcsa1(width, k)
        p = scsa_error_rate(width, k)
        timing = VariableLatencyTiming(m.t_spec, m.t_detect, m.t_recover)
        rows.append(
            (
                k,
                f"{p:.2e}",
                f"{m.delay:.3f}",
                percent(ratio(m.delay, dw.delay)),
                f"{m.area:.0f}",
                percent(ratio(m.area, dw.area)),
                f"{average_cycle(timing, p):.3f}",
            )
        )
    print(
        format_table(
            ["k", "P_err", "1-cycle delay", "vs DW", "area", "vs DW", "avg cycle"],
            rows,
            title=f"VLCSA 1 design space, n={width}",
        )
    )


def operating_points(width: int) -> None:
    k_low = scsa_window_size_for(width, 1e-4)
    k_high = scsa_window_size_for(width, 25e-4)
    m_low = measure_vlcsa1(width, k_low)
    m_high = measure_vlcsa1(width, k_high)
    t_low = VariableLatencyTiming(m_low.t_spec, m_low.t_detect, m_low.t_recover)
    t_high = VariableLatencyTiming(m_high.t_spec, m_high.t_detect, m_high.t_recover)
    ave_low = average_cycle(t_low, scsa_error_rate(width, k_low))
    ave_high = average_cycle(t_high, scsa_error_rate(width, k_high))

    area_saving = 1 - m_high.area / m_low.area
    cycle_cost = ave_high / t_high.t_clk - 1
    print(f"\nthesis operating points @ n={width}:")
    print(f"  0.01% -> k={k_low}:  area {m_low.area:.0f},  avg cycle {ave_low:.4f}")
    print(f"  0.25% -> k={k_high}:  area {m_high.area:.0f},  avg cycle {ave_high:.4f}")
    print(f"  relaxing 0.01% -> 0.25%: saves {area_saving:.0%} area for a "
          f"{cycle_cost:.2%} average-cycle penalty")
    print("  (thesis: 'save 17% area by increasing 0.12% average cycle')")


def frontier(width: int) -> None:
    from repro.analysis.pareto import design_space as sweep_space
    from repro.analysis.pareto import knee_point, pareto_front

    points = sweep_space(width, window_sizes=range(6, 22, 2))
    front = pareto_front(points)
    knee = knee_point(front)
    print("\nPareto frontier (error, delay, area — all minimized):")
    for p in front:
        marker = "  <- knee" if p == knee else ""
        print(f"  k={p.window_size:2d}  err={p.error_rate:.2e}  "
              f"delay={p.delay:.3f}  area={p.area:.0f}{marker}")


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    sweep(width)
    operating_points(width)
    frontier(width)


if __name__ == "__main__":
    main()
